/**
 * @file
 * Tests for the open-loop serving stack: OpenLoopConfig parsing and
 * validation, the bounded admission queues, the seeded Poisson/bursty
 * workload engine (determinism serial vs --jobs, exact counter, phase
 * sums with the ADMIT phase), tail-cut conditional attribution, the
 * slowest-transaction exemplar reservoir and its Perfetto export, the
 * p999 percentile surface, and the zero-cost-when-off contract.
 */

#include <cstdlib>
#include <string>
#include <vector>

#include "cpu/admission.hh"
#include "exp/experiment.hh"
#include "helpers.hh"
#include "json_parse.hh"
#include "workloads/openloop.hh"

namespace {

using namespace dsmtest;

// ----- OpenLoopConfig parsing and validation -----

TEST(OpenLoopConfig, ParseDefaultsAndSpecs)
{
    OpenLoopConfig c;
    EXPECT_TRUE(c.parse("1").empty());
    EXPECT_TRUE(c.enabled);
    EXPECT_DOUBLE_EQ(c.rate_ppc, 0.001);
    EXPECT_EQ(c.burst, 1);

    OpenLoopConfig d;
    EXPECT_TRUE(d.parse("default").empty());
    EXPECT_TRUE(d.enabled);

    OpenLoopConfig s;
    EXPECT_TRUE(
        s.parse("rate=0.01,burst=4,queue_cap=8,slo_cycles=500,"
                "ops_per_proc=32")
            .empty());
    EXPECT_TRUE(s.enabled);
    EXPECT_DOUBLE_EQ(s.rate_ppc, 0.01);
    EXPECT_EQ(s.burst, 4);
    EXPECT_EQ(s.queue_cap, 8);
    EXPECT_EQ(s.slo_cycles, 500u);
    EXPECT_EQ(s.ops_per_proc, 32);

    // summary() round-trips through parse().
    OpenLoopConfig r;
    EXPECT_TRUE(r.parse(s.summary()).empty());
    EXPECT_DOUBLE_EQ(r.rate_ppc, s.rate_ppc);
    EXPECT_EQ(r.burst, s.burst);
    EXPECT_EQ(r.queue_cap, s.queue_cap);
    EXPECT_EQ(r.slo_cycles, s.slo_cycles);
    EXPECT_EQ(r.ops_per_proc, s.ops_per_proc);
}

TEST(OpenLoopConfig, ParseErrorsAreDescriptive)
{
    OpenLoopConfig c;
    std::string err = c.parse("rate");
    EXPECT_NE(err.find("not key=value"), std::string::npos) << err;
    err = c.parse("rate=abc");
    EXPECT_NE(err.find("not a number"), std::string::npos) << err;
    err = c.parse("bogus=1");
    EXPECT_NE(err.find("unknown openloop spec key"), std::string::npos)
        << err;
}

TEST(OpenLoopConfig, ValidateRejectsBadKnobs)
{
    auto expectInvalid = [](void (*tweak)(Config &),
                            const char *needle) {
        Config cfg = smallConfig();
        cfg.openloop.enabled = true;
        cfg.openloop.rate_ppc = 0.001;
        tweak(cfg);
        std::string err = cfg.validate();
        EXPECT_NE(err.find(needle), std::string::npos)
            << "validate() said: " << err;
    };
    expectInvalid([](Config &c) { c.openloop.rate_ppc = 0.0; },
                  "rate_ppc");
    expectInvalid([](Config &c) { c.openloop.rate_ppc = 1.5; },
                  "rate_ppc");
    expectInvalid([](Config &c) { c.openloop.burst = 0; }, "burst");
    expectInvalid([](Config &c) { c.openloop.burst = 5000; }, "burst");
    expectInvalid([](Config &c) { c.openloop.queue_cap = 0; },
                  "admission slot");
    expectInvalid([](Config &c) { c.openloop.ops_per_proc = 0; },
                  "ops_per_proc");

    // A disabled config never validates its knobs.
    Config off = smallConfig();
    off.openloop.rate_ppc = 99.0;
    EXPECT_TRUE(off.validate().empty());
}

// ----- Admission queues -----

TEST(AdmissionQueues, BoundsDepthAndCountsSheds)
{
    OpenLoopConfig cfg;
    cfg.enabled = true;
    cfg.rate_ppc = 0.01;
    cfg.queue_cap = 2;
    cfg.slo_cycles = 10;
    AdmissionQueues adm;
    adm.configure(cfg, 2);

    EXPECT_TRUE(adm.offer(0, 100));
    EXPECT_TRUE(adm.offer(0, 101));
    EXPECT_FALSE(adm.offer(0, 102)); // full: shed
    EXPECT_TRUE(adm.offer(1, 102));  // other node unaffected
    EXPECT_EQ(adm.depth(0), 2u);
    EXPECT_EQ(adm.stats().offered, 4u);
    EXPECT_EQ(adm.stats().admitted, 3u);
    EXPECT_EQ(adm.stats().rejected, 1u);
    EXPECT_EQ(adm.stats().depth_on_arrival.max(), 2u);

    EXPECT_EQ(adm.pop(0, 105), 100u); // FIFO; waited 5
    EXPECT_EQ(adm.stats().admission_wait.max, 5u);
    adm.complete(100, 105); // sojourn 5 <= SLO
    adm.complete(101, 120); // sojourn 19 > SLO
    EXPECT_EQ(adm.stats().completed, 2u);
    EXPECT_EQ(adm.stats().slo_violations, 1u);
    EXPECT_EQ(adm.stats().sojourn.max, 19u);
}

// ----- The open-loop workload engine -----

Config
openLoopConfig(double rate, int burst = 1, int ops = 64,
               int queue_cap = 64)
{
    Config cfg = smallConfig(SyncPolicy::INV, 4);
    cfg.openloop.enabled = true;
    cfg.openloop.rate_ppc = rate;
    cfg.openloop.burst = burst;
    cfg.openloop.ops_per_proc = ops;
    cfg.openloop.queue_cap = queue_cap;
    cfg.openloop.slo_cycles = 400;
    return cfg;
}

TEST(OpenLoopRun, ServesEveryAdmittedArrivalExactly)
{
    Config cfg = openLoopConfig(0.002);
    cfg.txn_trace.enabled = true;
    System sys(cfg);
    OpenLoopResult r = runOpenLoop(sys, Primitive::FAP);

    EXPECT_TRUE(r.completed_run);
    EXPECT_TRUE(r.correct);
    EXPECT_EQ(r.offered, 4u * 64u);
    EXPECT_EQ(r.admitted + r.rejected, r.offered);
    EXPECT_EQ(r.completed, r.admitted); // the queues fully drain
    EXPECT_GT(r.sojourn_max, 0u);
    EXPECT_GE(r.sojourn_p999, r.sojourn_p99);
    EXPECT_GE(r.sojourn_p99, r.sojourn_p50);
    const OpenLoopStats &os = sys.admissionState().stats();
    EXPECT_EQ(os.completed, r.completed);
    EXPECT_EQ(os.sojourn.count, r.completed);

    // Every transaction's phase sums (including the new ADMIT phase)
    // still partition its end-to-end latency exactly.
    EXPECT_EQ(sys.txns().phaseSumMismatches(), 0u);
    expectCoherent(sys);
}

TEST(OpenLoopRun, AdmitPhaseCarriesQueueingDelay)
{
    // Saturating load on one hot counter: arrivals must queue, so the
    // tracer's ADMIT phase has to absorb the admission wait.
    Config cfg = openLoopConfig(0.05, 4);
    cfg.txn_trace.enabled = true;
    System sys(cfg);
    OpenLoopResult r = runOpenLoop(sys, Primitive::CAS);

    EXPECT_TRUE(r.completed_run);
    EXPECT_TRUE(r.correct);
    EXPECT_EQ(sys.txns().phaseSumMismatches(), 0u);

    const LatencyStat *admit = sys.txns().attribution().allPhaseStat(
        static_cast<int>(TxnPhase::ADMIT));
    EXPECT_GT(admit->count, 0u);
    EXPECT_GT(admit->sum, 0u);
    EXPECT_GT(r.admission_wait_mean, 0.0);
}

TEST(OpenLoopRun, OverloadShedsAtTheConfiguredCap)
{
    Config cfg = openLoopConfig(0.05, 1, 64, /*queue_cap=*/1);
    System sys(cfg);
    OpenLoopResult r = runOpenLoop(sys, Primitive::FAP);

    EXPECT_TRUE(r.completed_run);
    EXPECT_TRUE(r.correct);
    EXPECT_GT(r.rejected, 0u);
    // Depth observed on arrival can never exceed the cap.
    EXPECT_LE(sys.admissionState().stats().depth_on_arrival.max(), 1u);
    EXPECT_GT(r.slo_violations, 0u);
    EXPECT_GT(r.slo_frac, 0.0);
}

TEST(OpenLoopRun, DeterministicAcrossJobs)
{
    // The same seeded sweep, serial vs 4 host threads, must render a
    // byte-identical report (the determinism contract).
    auto buildAndRun = [](int jobs) {
        Config base = smallConfig(SyncPolicy::INV, 4);
        Experiment ex("openloop_determinism", base);
        ex.quiet(true).writeReport(false).table(false);
        for (double rate : {0.001, 0.01}) {
            for (Primitive prim :
                 {Primitive::FAP, Primitive::CAS, Primitive::LLSC}) {
                Config cfg = openLoopConfig(rate);
                cfg.txn_trace.enabled = true;
                cfg.txn_trace.exemplar_k = 2;
                ex.point(csprintf("prim%d", static_cast<int>(prim)),
                         csprintf("rate=%g", rate), cfg,
                         [prim](System &sys) {
                             OpenLoopResult r = runOpenLoop(sys, prim);
                             PointResult res;
                             res.value = r.sojourn_mean;
                             res.metrics = collectRunMetrics(sys);
                             res.fields
                                 .set("completed", r.completed)
                                 .set("rejected", r.rejected)
                                 .set("sojourn_p999",
                                      static_cast<std::uint64_t>(
                                          r.sojourn_p999));
                             res.fields.setRaw(
                                 "tail", sys.txns().exemplarsJson());
                             return res;
                         });
            }
        }
        ex.run(jobs);
        return ex.reportJson();
    };
    std::string serial = buildAndRun(1);
    std::string parallel = buildAndRun(4);
    EXPECT_EQ(serial, parallel);
}

// ----- Exemplar reservoir -----

TEST(Exemplars, KeepsTheKSlowestSortedAndDeterministic)
{
    Config cfg = openLoopConfig(0.02, 2);
    cfg.txn_trace.enabled = true;
    cfg.txn_trace.exemplar_k = 4;
    System sys(cfg);
    runOpenLoop(sys, Primitive::CAS);

    const std::vector<TxnRecord> &ex = sys.txns().exemplars();
    ASSERT_LE(ex.size(), 4u);
    ASSERT_GT(ex.size(), 0u);
    for (std::size_t i = 1; i < ex.size(); ++i) {
        Tick prev = ex[i - 1].complete - ex[i - 1].issue;
        Tick cur = ex[i].complete - ex[i].issue;
        EXPECT_GE(prev, cur) << "exemplars not sorted slowest-first";
        if (prev == cur) {
            EXPECT_LT(ex[i - 1].id, ex[i].id);
        }
    }
    // No transaction in the full record set is slower than the head.
    Tick head = ex[0].complete - ex[0].issue;
    for (const TxnRecord &r : sys.txns().records())
        EXPECT_LE(r.complete - r.issue, head);

    // A second identical run captures identical exemplars.
    System sys2(cfg);
    runOpenLoop(sys2, Primitive::CAS);
    const std::vector<TxnRecord> &ex2 = sys2.txns().exemplars();
    ASSERT_EQ(ex.size(), ex2.size());
    for (std::size_t i = 0; i < ex.size(); ++i) {
        EXPECT_EQ(ex[i].id, ex2[i].id);
        EXPECT_EQ(ex[i].complete, ex2[i].complete);
    }
}

TEST(Exemplars, SurviveRecordEvictionIntoChromeExport)
{
    // A tiny record capacity evicts most transactions, but the
    // reservoir must still deliver the slowest span trees into the
    // Perfetto export, categorized txn_exemplar.
    Config cfg = openLoopConfig(0.02, 2);
    cfg.txn_trace.enabled = true;
    cfg.txn_trace.capacity = 2;
    cfg.txn_trace.exemplar_k = 3;
    System sys(cfg);
    runOpenLoop(sys, Primitive::CAS);

    const std::vector<TxnRecord> &ex = sys.txns().exemplars();
    ASSERT_GT(ex.size(), 0u);

    std::string events =
        sys.txns().chromeEventsJsonArray(1, "openloop test");
    JsonValue doc;
    ASSERT_TRUE(parseJsonOrFail(events, &doc));
    ASSERT_TRUE(doc.isArray());
    std::size_t exemplar_events = 0;
    for (const JsonValue &e : doc.array) {
        const JsonValue *cat = e.find("cat");
        if (cat != nullptr && cat->string == "txn_exemplar")
            ++exemplar_events;
    }
    // At least one complete event per exemplar (span children extra).
    EXPECT_GE(exemplar_events, ex.size());

    // exemplarsJson() renders one entry per reservoir slot.
    JsonValue ej;
    ASSERT_TRUE(parseJsonOrFail(sys.txns().exemplarsJson(), &ej));
    ASSERT_TRUE(ej.isArray());
    EXPECT_EQ(ej.array.size(), ex.size());
    for (const JsonValue &e : ej.array) {
        EXPECT_TRUE(e.has("id"));
        EXPECT_TRUE(e.has("total"));
        EXPECT_TRUE(e.has("phases"));
    }
}

// ----- Tail-cut conditional attribution -----

TEST(TailCut, PhaseSumsPartitionTheTailExactly)
{
    Config cfg = openLoopConfig(0.02, 2, 128);
    cfg.txn_trace.enabled = true;
    System sys(cfg);
    runOpenLoop(sys, Primitive::LLSC);

    const PhaseAttribution &attr = sys.txns().attribution();
    ASSERT_GT(attr.tailRecords(), 0u);
    EXPECT_EQ(attr.tailDropped(), 0u);

    for (double q : {0.90, 0.99}) {
        PhaseAttribution::TailCut cut = attr.tailCut(q);
        ASSERT_GT(cut.count, 0u) << "q=" << q;
        EXPECT_EQ(cut.total.count, cut.count);
        // The conditional per-phase sums add up exactly to the tail
        // transactions' end-to-end cycles: attribution is a partition,
        // not an approximation.
        std::uint64_t phase_sum = 0;
        for (int ph = 0; ph < NUM_TXN_PHASES; ++ph)
            phase_sum += cut.phase[ph].sum;
        EXPECT_EQ(phase_sum, cut.total.sum) << "q=" << q;
        // Nearest-rank cut: at most (1-q) of the records qualify, and
        // every qualifying total is at or above the threshold.
        EXPECT_GE(cut.total.max, cut.threshold);
    }
    // The p99 cut is no larger than the p90 cut.
    EXPECT_LE(attr.tailCut(0.99).count, attr.tailCut(0.90).count);

    // tailJson() renders both cuts.
    JsonValue tj;
    ASSERT_TRUE(parseJsonOrFail(attr.tailJson(), &tj));
    EXPECT_TRUE(tj.has("p90"));
    EXPECT_TRUE(tj.has("p99"));
    EXPECT_EQ(static_cast<std::uint64_t>(tj.num("records")),
              attr.tailRecords());
}

TEST(TailCut, BoundedCapacityCountsDrops)
{
    Config cfg = openLoopConfig(0.02, 1, 64);
    cfg.txn_trace.enabled = true;
    cfg.txn_trace.tail_capacity = 8;
    System sys(cfg);
    runOpenLoop(sys, Primitive::FAP);

    const PhaseAttribution &attr = sys.txns().attribution();
    EXPECT_EQ(attr.tailRecords(), 8u);
    EXPECT_GT(attr.tailDropped(), 0u);
}

// ----- p999 surface -----

TEST(P999, HistogramNearestRankIsExact)
{
    Histogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.add(v);
    // Nearest-rank: ceil(0.999 * 1000) = 999th smallest.
    EXPECT_EQ(h.p999(), 999u);
    EXPECT_EQ(h.p99(), 990u);

    LatencyStat lat;
    lat.sample(100);
    EXPECT_GE(lat.p999(), lat.p99());
    EXPECT_LE(lat.p999(), lat.max);
}

TEST(P999, EmittedInStatsJsonAndReports)
{
    Config cfg = openLoopConfig(0.01);
    System sys(cfg);
    runOpenLoop(sys, Primitive::FAP);

    JsonValue stats;
    ASSERT_TRUE(parseJsonOrFail(sys.statsJson(), &stats));
    const JsonValue *ol = stats.find("openloop");
    ASSERT_NE(ol, nullptr);
    const JsonValue *soj = ol->find("sojourn");
    ASSERT_NE(soj, nullptr);
    EXPECT_TRUE(soj->has("p999"));
    EXPECT_TRUE(soj->has("p99"));
    EXPECT_GE(soj->num("p999"), soj->num("p99"));

    // Text report carries the new column too.
    EXPECT_NE(sys.report().find("p999="), std::string::npos);

    // RunMetrics rows emit p999 after p99.
    RunMetrics m = collectRunMetrics(sys);
    BenchRow row;
    row.metrics(m);
    BenchReport rep("p999_probe");
    rep.append(row);
    JsonValue doc;
    ASSERT_TRUE(parseJsonOrFail(rep.toJson(), &doc));
    const JsonValue *rows = doc.find("results");
    ASSERT_NE(rows, nullptr);
    ASSERT_EQ(rows->array.size(), 1u);
    EXPECT_TRUE(rows->array[0].has("p999"));
    EXPECT_GE(rows->array[0].num("p999"), rows->array[0].num("p99"));
}

// ----- Zero cost when off -----

TEST(OpenLoopOff, LeavesStatsJsonShapeUntouched)
{
    Config cfg = smallConfig();
    System sys(cfg);
    Addr a = sys.allocSync();
    sys.spawn(doStore(sys.proc(0), a, 7));
    runAll(sys);

    EXPECT_EQ(sys.admission(), nullptr);
    std::string stats = sys.statsJson();
    EXPECT_EQ(stats.find("openloop"), std::string::npos);
    EXPECT_EQ(stats.find("txn.tail"), std::string::npos);
}

} // namespace
