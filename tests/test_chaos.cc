/**
 * @file
 * Tests for the faulty-channel chaos axes (reordering, duplication,
 * payload corruption) and their epoch/sequence-hardened absorption:
 * config gating, the zero-cost-when-off promise, per-axis ledger
 * closure (every injected event detected or absorbed and reconciled
 * by checkFaultAccounting), the quarantine x reordering interaction,
 * seeded determinism, and the adaptive credit threshold
 * (serve.credit_threshold=auto) derived from the telemetry
 * queue-depth series.
 */

#include <gtest/gtest.h>

#include "helpers.hh"

#include "fault/fault.hh"
#include "fault/recovery.hh"
#include "workloads/counter_apps.hh"

using namespace dsmtest;

namespace {

/** Chaos fault spec on @p procs nodes with a seeded machine. */
Config
chaosConfig(SyncPolicy pol, int procs, const std::string &spec,
            std::uint64_t seed)
{
    Config cfg = smallConfig(pol, procs);
    cfg.machine.seed = seed;
    std::string err = cfg.faults.parse(spec);
    EXPECT_EQ(err, "");
    EXPECT_EQ(cfg.validate(), "");
    return cfg;
}

void
expectAccounted(System &sys)
{
    for (const std::string &v : checkFaultAccounting(sys))
        ADD_FAILURE() << "fault accounting violation: " << v;
    for (const std::string &v : checkCoherence(sys))
        ADD_FAILURE() << "coherence violation: " << v;
}

/** n concurrent fetch&add updaters, k increments each. */
void
spawnAdders(System &sys, Addr a, int nodes, int count)
{
    for (NodeId n = 0; n < nodes; ++n) {
        sys.spawn([](Proc &p, Addr addr, int cnt) -> Task {
            for (int i = 0; i < cnt; ++i)
                co_await p.fetchAdd(addr, 1);
        }(sys.proc(n), a, count));
    }
}

/** n concurrent LL/SC incrementers, k successful updates each. */
void
spawnLlscAdders(System &sys, Addr a, int nodes, int count)
{
    for (NodeId n = 0; n < nodes; ++n) {
        sys.spawn([](Proc &p, Addr addr, int cnt) -> Task {
            for (int i = 0; i < cnt; ++i) {
                for (;;) {
                    OpResult v = co_await p.ll(addr);
                    OpResult s = co_await p.sc(addr, v.value + 1);
                    if (s.success)
                        break;
                }
            }
        }(sys.proc(n), a, count));
    }
}

} // namespace

// ----- Config parsing and validation -----

TEST(ChaosConfig, AxesRequireTheirBounds)
{
    Config cfg = smallConfig();
    EXPECT_EQ(cfg.faults.parse("reorder_prob=0.01,req_timeout=500"), "");
    EXPECT_NE(cfg.validate().find("reorder_max"), std::string::npos);

    cfg = smallConfig();
    EXPECT_EQ(cfg.faults.parse("dup_prob=0.01,dup_delay=0,"
                               "req_timeout=500"),
              "");
    EXPECT_NE(cfg.validate().find("dup_delay"), std::string::npos);
}

TEST(ChaosConfig, ChaosRequiresRecovery)
{
    // Reordered/duplicated/corrupted channels are only survivable with
    // the sequence guards and retransmission machinery armed.
    Config cfg = smallConfig();
    EXPECT_EQ(cfg.faults.parse("corrupt_prob=0.01"), "");
    EXPECT_NE(cfg.validate().find("req_timeout"), std::string::npos);
}

TEST(ChaosConfig, ChaosEnabledPredicate)
{
    Config cfg = smallConfig();
    EXPECT_FALSE(cfg.faults.chaosEnabled());
    EXPECT_EQ(cfg.faults.parse("drop_prob=0.01,req_timeout=500"), "");
    EXPECT_FALSE(cfg.faults.chaosEnabled());
    EXPECT_FALSE(cfg.faults.reorderPossible());
    EXPECT_EQ(cfg.faults.parse("reorder_prob=0.01,reorder_max=16,"
                               "req_timeout=500"),
              "");
    EXPECT_TRUE(cfg.faults.chaosEnabled());
    EXPECT_TRUE(cfg.faults.reorderPossible());
}

// ----- Zero cost when off -----

TEST(Chaos, ZeroCostWhenOff)
{
    // A fault-free run and a loss-only recovery run must not even
    // mention the chaos counters: existing configs keep their exact
    // stats JSON shape.
    System off(smallConfig());
    Addr a = off.allocSync();
    spawnAdders(off, a, 4, 8);
    runAll(off);
    EXPECT_EQ(off.debugRead(a), 32u);
    std::string js = off.statsJson();
    EXPECT_EQ(js.find("\"msg_reorders\""), std::string::npos);
    EXPECT_EQ(js.find("\"msg_dups\""), std::string::npos);
    EXPECT_EQ(js.find("\"msg_corruptions\""), std::string::npos);
    EXPECT_EQ(js.find("\"recovery\""), std::string::npos);

    Config loss = smallConfig(SyncPolicy::INV, 4);
    EXPECT_EQ(loss.faults.parse("drop_prob=0.001,req_timeout=2000"),
              "");
    System lsys(loss);
    Addr b = lsys.allocSync();
    spawnAdders(lsys, b, 4, 8);
    runAll(lsys);
    EXPECT_EQ(lsys.debugRead(b), 32u);
    js = lsys.statsJson();
    EXPECT_NE(js.find("\"drops\""), std::string::npos);
    EXPECT_EQ(js.find("\"msg_reorders\""), std::string::npos);
    EXPECT_EQ(js.find("\"corrupt_detected\""), std::string::npos);
    EXPECT_EQ(js.find("\"dups_absorbed\""), std::string::npos);
    EXPECT_EQ(js.find("\"reorders_delivered\""), std::string::npos);
}

TEST(Chaos, DeterministicStatsForSameSeed)
{
    const std::string spec =
        "jitter_prob=0.01,jitter_max=16,drop_prob=0.002,"
        "reorder_prob=0.005,reorder_max=32,dup_prob=0.005,dup_delay=64,"
        "corrupt_prob=0.002,req_timeout=2000";
    std::string first;
    for (int rep = 0; rep < 2; ++rep) {
        Config cfg = chaosConfig(SyncPolicy::INV, 8, spec, 7);
        System sys(cfg);
        Addr a = sys.allocSync();
        spawnAdders(sys, a, 8, 16);
        runAll(sys);
        EXPECT_EQ(sys.debugRead(a), 128u);
        if (rep == 0)
            first = sys.statsJson();
        else
            EXPECT_EQ(first, sys.statsJson());
    }
}

// ----- Per-axis ledger closure -----

TEST(Chaos, ReorderingAbsorbedExactly)
{
    // Pure reordering: no losses, every skewed delivery counted and
    // the run still exact and coherent (the fill-race guard keeps a
    // late grant from resurrecting an untracked copy).
    std::uint64_t reorders = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        Config cfg = chaosConfig(
            SyncPolicy::INV, 8,
            "reorder_prob=0.02,reorder_max=64,req_timeout=2000", seed);
        System sys(cfg);
        Addr a = sys.allocSync();
        spawnAdders(sys, a, 8, 16);
        runAll(sys);
        EXPECT_EQ(sys.debugRead(a), 128u) << "seed " << seed;
        expectAccounted(sys);
        const FaultPlan::Counters &fc = sys.faultPlan().counters();
        const Recovery::Counters &rc =
            sys.recoveryState().counters();
        EXPECT_EQ(rc.reorders_delivered, fc.msg_reorders);
        EXPECT_EQ(rc.drops, 0u);
        reorders += fc.msg_reorders;
    }
    EXPECT_GT(reorders, 0u);
}

TEST(Chaos, DuplicatesAbsorbedExactly)
{
    // Pure duplication: every replayed delivery is absorbed by the
    // sequence guards, exactly once, with no protocol re-execution.
    std::uint64_t dups = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        Config cfg = chaosConfig(
            SyncPolicy::UPD, 8,
            "dup_prob=0.02,dup_delay=32,req_timeout=2000", seed);
        System sys(cfg);
        Addr a = sys.allocSync();
        spawnAdders(sys, a, 8, 16);
        runAll(sys);
        EXPECT_EQ(sys.debugRead(a), 128u) << "seed " << seed;
        expectAccounted(sys);
        const FaultPlan::Counters &fc = sys.faultPlan().counters();
        const Recovery::Counters &rc =
            sys.recoveryState().counters();
        EXPECT_EQ(rc.dups_absorbed, fc.msg_dups);
        EXPECT_EQ(rc.drops, 0u);
        dups += fc.msg_dups;
    }
    EXPECT_GT(dups, 0u);
}

TEST(Chaos, CorruptionDetectedAsDrops)
{
    // Pure corruption: every bit-flip is caught by the checksum at the
    // ejection port and recovered like a loss — zero undetected.
    std::uint64_t corruptions = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        Config cfg = chaosConfig(
            SyncPolicy::UNC, 8, "corrupt_prob=0.01,req_timeout=2000",
            seed);
        System sys(cfg);
        Addr a = sys.allocSync();
        spawnAdders(sys, a, 8, 16);
        runAll(sys);
        EXPECT_EQ(sys.debugRead(a), 128u) << "seed " << seed;
        expectAccounted(sys);
        const FaultPlan::Counters &fc = sys.faultPlan().counters();
        const Recovery::Counters &rc =
            sys.recoveryState().counters();
        EXPECT_EQ(rc.corrupt_detected, fc.msg_corruptions);
        EXPECT_EQ(rc.drops, fc.msg_corruptions);
        corruptions += fc.msg_corruptions;
    }
    EXPECT_GT(corruptions, 0u);
}

TEST(Chaos, CorruptionAlwaysLandsInChecksummedFootprint)
{
    // The checksum only covers the data block when the message carries
    // one; a flip on a payload-less message must be redirected into a
    // covered word, or the injection would be undetectable and the
    // ledger would never reconcile.
    FaultConfig fc;
    ASSERT_EQ(fc.parse("corrupt_prob=1,req_timeout=2000"), "");
    FaultPlan plan;
    MachineConfig mc;
    plan.configure(fc, 42, mc);
    for (int i = 0; i < 256; ++i) {
        Msg m;
        m.type = MsgType::GET_S;
        m.src = 0;
        m.dst = 1;
        m.requester = 0;
        m.addr = 0x40;
        m.word_addr = 0x40;
        m.seq = static_cast<std::uint64_t>(i) + 1;
        m.has_data = false;
        m.checksum = m.computeChecksum();
        ASSERT_TRUE(plan.corruptMessage(m));
        EXPECT_NE(m.computeChecksum(), m.checksum) << "flip " << i;
    }
    EXPECT_EQ(plan.counters().msg_corruptions, 256u);
}

// ----- Interactions -----

TEST(Chaos, QuarantineWithReordering)
{
    // Flaky-link episodes with quarantine while reordering is armed:
    // the reroute and the skewed deliveries must compose — the run
    // completes exactly, links get quarantined, and the drop ledger
    // still closes over both loss sources.
    std::uint64_t quarantined = 0, reorders = 0;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        Config cfg = chaosConfig(
            SyncPolicy::INV, 8,
            "flaky_links=2,flaky_window=2000,flaky_duration=40000,"
            "flaky_drop_prob=1,quarantine_k=1,quarantine_window=1000000,"
            "reorder_prob=0.01,reorder_max=64,req_timeout=2000",
            seed);
        System sys(cfg);
        // Counters homed across the mesh keep most links busy so the
        // randomly placed episodes hit traffic (same layout as the
        // reorder-free quarantine test).
        Addr ctrs[4];
        const NodeId homes[4] = {0, 2, 5, 7};
        for (int i = 0; i < 4; ++i)
            ctrs[i] = sys.allocSyncAt(homes[i]);
        for (NodeId n = 0; n < 8; ++n) {
            sys.spawn([](Proc &p, const Addr *cs) -> Task {
                for (int i = 0; i < 24; ++i)
                    co_await p.fetchAdd(cs[i % 4], 1);
            }(sys.proc(n), ctrs));
        }
        runAll(sys);
        for (int i = 0; i < 4; ++i)
            EXPECT_EQ(sys.debugRead(ctrs[i]), 48u) << "seed " << seed;
        expectAccounted(sys);
        const Recovery::Counters &rc =
            sys.recoveryState().counters();
        EXPECT_EQ(rc.drops,
                  rc.retransmit_covered + rc.quarantine_covered);
        quarantined += rc.links_quarantined;
        reorders += sys.faultPlan().counters().msg_reorders;
    }
    EXPECT_GT(quarantined, 0u);
    EXPECT_GT(reorders, 0u);
}

TEST(Chaos, AllAxesLlscExact)
{
    // The full six-axis mix against the most race-prone primitive:
    // LL/SC under contention survives jitter, loss, reordering,
    // duplication, and corruption with an exact counter.
    Config cfg = chaosConfig(
        SyncPolicy::INV, 8,
        "jitter_prob=0.01,jitter_max=16,drop_prob=0.002,"
        "reorder_prob=0.005,reorder_max=32,dup_prob=0.005,dup_delay=64,"
        "corrupt_prob=0.002,resv_max_age=200000,req_timeout=2000",
        11);
    System sys(cfg);
    Addr a = sys.allocSync();
    spawnLlscAdders(sys, a, 8, 8);
    runAll(sys);
    EXPECT_EQ(sys.debugRead(a), 64u);
    expectAccounted(sys);
}

// ----- Adaptive credit threshold -----

TEST(AdaptiveCredit, ParseAndValidate)
{
    ServeConfig sv;
    EXPECT_EQ(sv.parse("credit_threshold=auto"), "");
    EXPECT_TRUE(sv.enabled);
    EXPECT_TRUE(sv.credit_auto);

    // auto requires both backpressure and the telemetry series.
    Config cfg = smallConfig();
    EXPECT_EQ(cfg.serve.parse("credit_threshold=auto"), "");
    EXPECT_NE(cfg.validate().find("telemetry"), std::string::npos);
    cfg.telemetry.enabled = true;
    EXPECT_EQ(cfg.validate(), "");
    cfg.serve.backpressure = false;
    EXPECT_NE(cfg.validate().find("backpressure"), std::string::npos);
}

TEST(AdaptiveCredit, ThresholdTracksQueueDepthSeries)
{
    // Rate step: a light phase, then a heavily contended phase. The
    // threshold must always equal max(2, 2*ceil(mean sampled depth))
    // — the documented pure function of the telemetry series — and
    // never fall below the floor.
    Config cfg = smallConfig(SyncPolicy::INV, 8);
    EXPECT_EQ(cfg.serve.parse("credit_threshold=auto"), "");
    cfg.telemetry.enabled = true;
    cfg.telemetry.window = 256;
    ASSERT_EQ(cfg.validate(), "");
    System sys(cfg);
    Addr a = sys.allocSync();

    spawnAdders(sys, a, 1, 4); // light
    runAll(sys);
    int t1 = sys.adaptiveCreditThreshold();
    EXPECT_GE(t1, 2);

    spawnAdders(sys, a, 8, 64); // step up
    runAll(sys);
    int t2 = sys.adaptiveCreditThreshold();
    EXPECT_GE(t2, 2);

    std::vector<std::uint64_t> v =
        sys.telemetryState().seriesValues("serve_queue_depth");
    ASSERT_FALSE(v.empty());
    std::uint64_t sum = 0;
    for (std::uint64_t x : v)
        sum += x;
    std::uint64_t mean_ceil =
        (sum + v.size() - 1) / static_cast<std::uint64_t>(v.size());
    std::uint64_t expect = 2 * mean_ceil;
    if (expect < 2)
        expect = 2;
    EXPECT_EQ(static_cast<std::uint64_t>(t2), expect);
}

TEST(AdaptiveCredit, StaticThresholdKeepsJsonShape)
{
    // serve without auto must not grow the telemetry export: the
    // queue-depth series is registered only under credit_auto.
    Config cfg = smallConfig(SyncPolicy::INV, 8);
    EXPECT_EQ(cfg.serve.parse("default"), "");
    cfg.telemetry.enabled = true;
    ASSERT_EQ(cfg.validate(), "");
    System sys(cfg);
    Addr a = sys.allocSync();
    spawnAdders(sys, a, 8, 8);
    runAll(sys);
    EXPECT_TRUE(
        sys.telemetryState().seriesValues("serve_queue_depth").empty());
    EXPECT_EQ(sys.statsJson().find("serve_queue_depth"),
              std::string::npos);
}
