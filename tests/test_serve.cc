/**
 * @file
 * Tests for the overload-protection serving layer (ServeConfig):
 * config parsing/validation/env plumbing, the two-level HomeQueue unit
 * behavior (priority, aging, combinable extraction), end-to-end
 * home-node fetch&add combining correctness across all three
 * placement policies (k combined FAPs return k distinct consecutive
 * values, coherence checker clean), exact counter reconciliation
 * (served == slots + coalesced, anti-vacuously with coalesced > 0
 * under contention), credit backpressure shedding at the admission
 * edge, the watchdog's throttled-transaction classification, and the
 * zero-cost-when-off contract.
 */

#include <cstdlib>
#include <string>
#include <vector>

#include "helpers.hh"
#include "json_parse.hh"
#include "mem/home_queue.hh"
#include "sync/lockfree_counter.hh"
#include "workloads/openloop.hh"

namespace {

using namespace dsmtest;

// ----- ServeConfig parsing and validation -----

TEST(ServeConfig, ParseDefaultsAndSpecs)
{
    ServeConfig c;
    EXPECT_TRUE(c.parse("1").empty());
    EXPECT_TRUE(c.enabled);
    EXPECT_TRUE(c.combining);
    EXPECT_TRUE(c.backpressure);
    EXPECT_TRUE(c.priority);
    EXPECT_TRUE(c.nack_backoff);

    ServeConfig s;
    EXPECT_TRUE(s.parse("combining=0,backpressure=1,credit_threshold=3,"
                        "priority=0,age_limit=500,nack_backoff=1,"
                        "backoff_cap=8,combine_limit=4")
                    .empty());
    EXPECT_TRUE(s.enabled);
    EXPECT_FALSE(s.combining);
    EXPECT_EQ(s.combine_limit, 4);
    EXPECT_TRUE(s.backpressure);
    EXPECT_EQ(s.credit_threshold, 3);
    EXPECT_FALSE(s.priority);
    EXPECT_EQ(s.age_limit, 500u);
    EXPECT_EQ(s.backoff_cap, 8);

    // summary() round-trips through parse().
    ServeConfig r;
    EXPECT_TRUE(r.parse(s.summary()).empty());
    EXPECT_EQ(r.combining, s.combining);
    EXPECT_EQ(r.combine_limit, s.combine_limit);
    EXPECT_EQ(r.credit_threshold, s.credit_threshold);
    EXPECT_EQ(r.priority, s.priority);
    EXPECT_EQ(r.age_limit, s.age_limit);
    EXPECT_EQ(r.backoff_cap, s.backoff_cap);

    ServeConfig bad;
    EXPECT_NE(bad.parse("bogus=1").find("unknown serve spec key"),
              std::string::npos);
}

TEST(ServeConfig, ValidateRejectsBadKnobs)
{
    auto expectInvalid = [](void (*tweak)(Config &),
                            const char *needle) {
        Config cfg = smallConfig();
        cfg.serve.enabled = true;
        tweak(cfg);
        std::string err = cfg.validate();
        EXPECT_NE(err.find(needle), std::string::npos)
            << "validate() said: " << err;
    };
    expectInvalid([](Config &c) { c.serve.combine_limit = 1; },
                  "combine_limit");
    expectInvalid([](Config &c) { c.serve.credit_threshold = 0; },
                  "credit_threshold");
    expectInvalid([](Config &c) { c.serve.age_limit = 0; },
                  "age_limit");
    expectInvalid([](Config &c) { c.serve.backoff_cap = 2; },
                  "backoff_cap");
    expectInvalid([](Config &c) { c.serve.backoff_cap = 30; },
                  "backoff_cap");

    // A disabled config never validates its knobs.
    Config off = smallConfig();
    off.serve.combine_limit = 0;
    EXPECT_TRUE(off.validate().empty());
}

TEST(ServeConfig, EnvOverride)
{
    ::setenv("DSM_SERVE", "credit_threshold=5,combining=0", 1);
    ServeConfig c = serveConfigFromEnv();
    EXPECT_TRUE(c.enabled);
    EXPECT_EQ(c.credit_threshold, 5);
    EXPECT_FALSE(c.combining);
    ::setenv("DSM_SERVE", "0", 1);
    EXPECT_FALSE(serveConfigFromEnv().enabled);
    ::unsetenv("DSM_SERVE");
    EXPECT_FALSE(serveConfigFromEnv().enabled);
}

// ----- HomeQueue unit behavior -----

Msg
fapReq(NodeId src, Addr word, MsgType t = MsgType::UNC_REQ)
{
    Msg m;
    m.type = t;
    m.src = src;
    m.op = AtomicOp::FAA;
    m.addr = blockBase(word);
    m.word_addr = word;
    m.value = 1;
    return m;
}

TEST(HomeQueue, PriorityAndAging)
{
    ServeStats st;
    HomeQueue q(/*age_limit=*/100);
    Msg lo = fapReq(1, BLOCK_BYTES);
    Msg hi = fapReq(2, BLOCK_BYTES);
    q.push(lo, /*now=*/0, /*low=*/true);
    q.push(hi, /*now=*/50, /*low=*/false);

    // Below the age limit the foreground head wins.
    HomeQueue::Entry e = q.pop(/*now=*/60, st);
    EXPECT_EQ(e.msg.src, 2);
    EXPECT_EQ(st.hi_served, 1u);

    // Push fresh foreground traffic; once the low head has waited
    // age_limit cycles it is served next despite the foreground queue.
    q.push(fapReq(3, BLOCK_BYTES), 70, false);
    e = q.pop(/*now=*/150, st);
    EXPECT_EQ(e.msg.src, 1);
    EXPECT_EQ(st.lo_served, 1u);
    EXPECT_EQ(st.aged, 1u);

    e = q.pop(/*now=*/150, st);
    EXPECT_EQ(e.msg.src, 3);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(st.served, 3u);
}

TEST(HomeQueue, ExtractCombinableRespectsTypeWordAndLimit)
{
    ServeStats st;
    HomeQueue q(1000);
    Msg lead = fapReq(0, BLOCK_BYTES);
    q.push(fapReq(1, BLOCK_BYTES), 0, false);          // combines
    q.push(fapReq(2, BLOCK_BYTES + WORD_BYTES), 0, false); // other word
    q.push(fapReq(3, BLOCK_BYTES, MsgType::UPD_REQ), 0, false); // type
    q.push(fapReq(4, BLOCK_BYTES), 0, true);           // combines (low)
    q.push(fapReq(5, BLOCK_BYTES), 0, false);          // combines

    std::vector<HomeQueue::Entry> got = q.extractCombinable(lead, 2);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].msg.src, 1);
    EXPECT_EQ(got[1].msg.src, 5);
    EXPECT_EQ(q.depth(), 3u); // non-matching + over-limit stay queued

    // Same-src duplicates (retransmissions) never combine; dedup at
    // service time handles them instead.
    EXPECT_FALSE(HomeQueue::combinesWith(lead, fapReq(0, BLOCK_BYTES)));
    // GET_S combines on the block address.
    Msg gs_lead = fapReq(0, BLOCK_BYTES, MsgType::GET_S);
    Msg gs_follow = fapReq(1, BLOCK_BYTES, MsgType::GET_S);
    EXPECT_TRUE(HomeQueue::combinesWith(gs_lead, gs_follow));
}

// ----- End-to-end combining correctness -----

Task
incCollect(Proc &p, LockFreeCounter &c, int n, std::vector<Word> *out)
{
    for (int i = 0; i < n; ++i)
        out->push_back(co_await c.fetchInc(p));
}

Config
serveConfig(SyncPolicy pol, int procs = 8)
{
    Config cfg = smallConfig(pol, procs);
    cfg.serve.enabled = true;
    return cfg;
}

class CombiningMatrix : public testing::TestWithParam<SyncPolicy>
{
};

TEST_P(CombiningMatrix, CombinedFapsReturnDistinctConsecutiveValues)
{
    // Eight processors hammer one counter through its home node. With
    // combining on, queued fetch&adds to the word are folded into one
    // memory service slot — and every requester must still observe a
    // distinct value, together forming the serial history 0..N-1.
    Config cfg = serveConfig(GetParam());
    System sys(cfg);
    LockFreeCounter counter(sys, Primitive::FAP);
    const int per_proc = 30;
    std::vector<Word> seen;
    for (NodeId n = 0; n < 8; ++n)
        sys.spawn(incCollect(sys.proc(n), counter, per_proc, &seen));
    runAll(sys);

    ASSERT_EQ(seen.size(), 8u * per_proc);
    std::sort(seen.begin(), seen.end());
    for (Word i = 0; i < 8 * per_proc; ++i)
        EXPECT_EQ(seen[static_cast<size_t>(i)], i);
    EXPECT_EQ(sys.debugRead(counter.addr()), 8u * per_proc);

    // Exact counter reconciliation: every serve slot pops one leader,
    // so requests served decompose exactly into slots plus coalesced
    // followers, and the two service classes partition the total.
    const ServeStats &st = sys.serveStats();
    EXPECT_EQ(st.served, st.slots + st.coalesced);
    EXPECT_EQ(st.served, st.hi_served + st.lo_served);
    // Anti-vacuous under memory-executed policies: contention on one
    // word must actually coalesce. (Under INV the FAPs execute in the
    // requester's cache via GET_X, which never combines.)
    if (GetParam() != SyncPolicy::INV) {
        EXPECT_GT(st.coalesced, 0u) << "combining never fired";
        EXPECT_GT(st.batches, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Policies, CombiningMatrix,
                         testing::Values(SyncPolicy::INV, SyncPolicy::UPD,
                                         SyncPolicy::UNC),
                         [](const testing::TestParamInfo<SyncPolicy> &i) {
                             return std::string(toString(i.param));
                         });

TEST(Combining, DisabledServesOnePerSlot)
{
    Config cfg = serveConfig(SyncPolicy::UNC);
    cfg.serve.combining = false;
    System sys(cfg);
    LockFreeCounter counter(sys, Primitive::FAP);
    std::vector<Word> seen;
    for (NodeId n = 0; n < 8; ++n)
        sys.spawn(incCollect(sys.proc(n), counter, 10, &seen));
    runAll(sys);
    EXPECT_EQ(sys.debugRead(counter.addr()), 80u);
    const ServeStats &st = sys.serveStats();
    EXPECT_EQ(st.coalesced, 0u);
    EXPECT_EQ(st.served, st.slots);
}

TEST(Combining, CombineLimitBoundsBatchSize)
{
    Config cfg = serveConfig(SyncPolicy::UNC, 16);
    cfg.serve.combine_limit = 2;
    System sys(cfg);
    LockFreeCounter counter(sys, Primitive::FAP);
    std::vector<Word> seen;
    for (NodeId n = 0; n < 16; ++n)
        sys.spawn(incCollect(sys.proc(n), counter, 10, &seen));
    runAll(sys);
    EXPECT_EQ(sys.debugRead(counter.addr()), 160u);
    const ServeStats &st = sys.serveStats();
    EXPECT_EQ(st.served, st.slots + st.coalesced);
    // With limit 2 each batch holds one leader and one follower.
    EXPECT_EQ(st.coalesced, st.batches);
}

TEST(Serve, DeterministicStatsAcrossRuns)
{
    auto once = [] {
        Config cfg = serveConfig(SyncPolicy::UNC);
        System sys(cfg);
        LockFreeCounter counter(sys, Primitive::FAP);
        std::vector<Word> seen;
        for (NodeId n = 0; n < 8; ++n)
            sys.spawn(incCollect(sys.proc(n), counter, 20, &seen));
        runAll(sys);
        return sys.statsJson();
    };
    EXPECT_EQ(once(), once());
}

// ----- Credit backpressure -----

TEST(Backpressure, ShedsAtTheAdmissionEdgeUnderOverload)
{
    // Saturating open-loop arrivals against one hot counter: the home
    // queue backs up past the credit threshold, replies advertise the
    // depth, requesters throttle, and the admission edge sheds.
    Config cfg = smallConfig(SyncPolicy::UNC, 4);
    cfg.openloop.enabled = true;
    cfg.openloop.rate_ppc = 0.05;
    cfg.openloop.burst = 4;
    cfg.openloop.ops_per_proc = 64;
    cfg.openloop.queue_cap = 64;
    cfg.openloop.slo_cycles = 400;
    cfg.serve.enabled = true;
    cfg.serve.combining = false; // keep the queue deep
    cfg.serve.credit_threshold = 2;
    System sys(cfg);
    OpenLoopResult r = runOpenLoop(sys, Primitive::FAP);

    EXPECT_TRUE(r.completed_run);
    EXPECT_TRUE(r.correct);
    const ServeStats &st = sys.serveStats();
    EXPECT_GT(st.throttle_events, 0u) << "no requester ever throttled";
    EXPECT_GT(st.throttle_cycles, 0u);
    const OpenLoopStats &os = sys.admissionState().stats();
    EXPECT_GT(os.rejected_throttled, 0u) << "throttle never reached "
                                            "the admission edge";
    EXPECT_LE(os.rejected_throttled, os.rejected);
}

// ----- Watchdog classification -----

TEST(WatchdogServe, BackoffParkIsNotLivelock)
{
    // Injected NACK storms force deep retry chains, so a transaction
    // spends most of its life waiting out exponential backoff. An
    // aggressive age bound that trips the watchdog without the serving
    // layer must complete with it on: parked cycles are deliberate
    // waiting and do not count toward livelock age.
    auto build = [](bool serve_on) {
        Config cfg = smallConfig(SyncPolicy::INV, 8);
        cfg.machine.retry_delay = 150;
        cfg.faults.enabled = true;
        cfg.faults.nack_prob = 0.9;
        cfg.faults.max_extra_nacks = 12;
        cfg.watchdog.enabled = true;
        cfg.watchdog.max_txn_age = 2500;
        cfg.watchdog.scan_period = 250;
        cfg.serve.enabled = serve_on;
        cfg.serve.backoff_cap = 6;
        return cfg;
    };

    Config off = build(false);
    System sys_off(off);
    LockFreeCounter c_off(sys_off, Primitive::FAP);
    std::vector<Word> sink;
    for (NodeId n = 0; n < 8; ++n)
        sys_off.spawn(incCollect(sys_off.proc(n), c_off, 30, &sink));
    RunResult r_off = sys_off.run();
    ASSERT_TRUE(r_off.livelocked)
        << "baseline config no longer trips; tighten max_txn_age";
    EXPECT_NE(r_off.diagnosis.find("exceeded the age bound"),
              std::string::npos);

    Config on = build(true);
    System sys_on(on);
    LockFreeCounter c_on(sys_on, Primitive::FAP);
    std::vector<Word> seen;
    for (NodeId n = 0; n < 8; ++n)
        sys_on.spawn(incCollect(sys_on.proc(n), c_on, 30, &seen));
    // Sample blocked-transaction dumps mid-run: parked transactions
    // must be classified as throttled, not stuck.
    std::string dumps;
    std::function<void()> sample = [&] {
        bool parked = false;
        for (NodeId n = 0; n < 8; ++n)
            if (sys_on.now() < sys_on.ctrl(n).cpuParkedUntil())
                parked = true;
        if (parked && dumps.empty())
            dumps = Watchdog::blockedTxnDump(sys_on);
        if (dumps.empty() && sys_on.tasksPending() > 0)
            sys_on.eq().scheduleIn(200, sample);
    };
    sys_on.eq().scheduleIn(200, sample);
    RunResult r_on = sys_on.run();
    EXPECT_TRUE(r_on.completed)
        << "serve-on run did not complete: " << r_on.diagnosis;
    EXPECT_FALSE(r_on.livelocked);
    EXPECT_EQ(sys_on.debugRead(c_on.addr()), 8u * 30);
    EXPECT_NE(dumps.find("(throttled: "), std::string::npos)
        << "no parked transaction was classified throttled:\n" << dumps;
}

// ----- Fault accounting under loss + overload -----

TEST(ServeFaults, LedgerClosesUnderLossAndOverload)
{
    // Message loss, retransmission, combining, backpressure, priority,
    // and backoff all at once under saturating open-loop arrivals: the
    // fault-accounting ledger must still reconcile exactly — no
    // retransmitted fetch&add double-applied through a combined batch,
    // no drop or retry unaccounted for.
    Config cfg = smallConfig(SyncPolicy::UNC, 8);
    cfg.openloop.enabled = true;
    cfg.openloop.rate_ppc = 0.02;
    cfg.openloop.burst = 4;
    cfg.openloop.ops_per_proc = 48;
    cfg.openloop.queue_cap = 32;
    cfg.openloop.slo_cycles = 1000;
    cfg.serve.enabled = true;
    cfg.faults.enabled = true;
    cfg.faults.msg_drop_prob = 0.01;
    cfg.faults.req_timeout = 2000;
    System sys(cfg);
    OpenLoopResult r = runOpenLoop(sys, Primitive::FAP);

    EXPECT_TRUE(r.completed_run);
    EXPECT_TRUE(r.correct);
    for (const std::string &v : checkCoherence(sys))
        ADD_FAILURE() << v;
    for (const std::string &v : checkFaultAccounting(sys))
        ADD_FAILURE() << v;
    // Anti-vacuous: the run must actually lose messages and combine.
    EXPECT_GT(sys.faultPlan().counters().msg_drops, 0u);
    const ServeStats &st = sys.serveStats();
    EXPECT_EQ(st.served, st.slots + st.coalesced);
    EXPECT_GT(st.coalesced, 0u);
}

// ----- Zero cost when off -----

TEST(ServeOff, LeavesStatsJsonShapeUntouched)
{
    Config cfg = smallConfig();
    System sys(cfg);
    Addr a = sys.allocSync();
    sys.spawn(doStore(sys.proc(0), a, 7));
    runAll(sys);

    EXPECT_EQ(sys.homeQueue(0), nullptr);
    std::string stats = sys.statsJson();
    EXPECT_EQ(stats.find("\"serve\""), std::string::npos);
    EXPECT_EQ(stats.find("rejected_throttled"), std::string::npos);
    const ServeStats &st = sys.serveStats();
    EXPECT_EQ(st.slots, 0u);
    EXPECT_EQ(st.served, 0u);
}

} // namespace
