/** @file Lock-free counter correctness across primitives and policies. */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "sync/lockfree_counter.hh"

using namespace dsmtest;

namespace {

struct CounterCase
{
    Primitive prim;
    SyncPolicy policy;
    bool load_exclusive;
    bool drop_copy;
};

std::string
caseName(const testing::TestParamInfo<CounterCase> &info)
{
    std::string s = toString(info.param.prim);
    s += "_";
    s += toString(info.param.policy);
    if (info.param.load_exclusive)
        s += "_lx";
    if (info.param.drop_copy)
        s += "_dc";
    return s;
}

std::vector<CounterCase>
allCases()
{
    std::vector<CounterCase> v;
    for (Primitive prim :
         {Primitive::FAP, Primitive::CAS, Primitive::LLSC})
        for (SyncPolicy pol :
             {SyncPolicy::INV, SyncPolicy::UPD, SyncPolicy::UNC})
            v.push_back({prim, pol, false, false});
    v.push_back({Primitive::CAS, SyncPolicy::INV, true, false});
    v.push_back({Primitive::CAS, SyncPolicy::INV, true, true});
    v.push_back({Primitive::FAP, SyncPolicy::INV, false, true});
    v.push_back({Primitive::LLSC, SyncPolicy::INV, false, true});
    return v;
}

Task
incLoop(Proc &p, LockFreeCounter &c, int n)
{
    for (int i = 0; i < n; ++i)
        co_await c.fetchInc(p);
}

} // namespace

class CounterMatrix : public testing::TestWithParam<CounterCase>
{
};

TEST_P(CounterMatrix, SumsExactlyUnderContention)
{
    Config cfg = smallConfig(GetParam().policy, 8);
    cfg.sync.use_load_exclusive = GetParam().load_exclusive;
    cfg.sync.use_drop_copy = GetParam().drop_copy;
    System sys(cfg);
    LockFreeCounter counter(sys, GetParam().prim);
    const int per_proc = 30;
    for (NodeId n = 0; n < 8; ++n)
        sys.spawn(incLoop(sys.proc(n), counter, per_proc));
    runAll(sys);
    EXPECT_EQ(sys.debugRead(counter.addr()), 8u * per_proc);
}

INSTANTIATE_TEST_SUITE_P(Matrix, CounterMatrix,
                         testing::ValuesIn(allCases()), caseName);

TEST(Counter, FetchAddReturnsDistinctValues)
{
    System sys(smallConfig(SyncPolicy::INV, 4));
    LockFreeCounter counter(sys, Primitive::CAS);
    std::vector<Word> seen;
    for (NodeId n = 0; n < 4; ++n) {
        sys.spawn([](Proc &p, LockFreeCounter &c,
                     std::vector<Word> *out) -> Task {
            for (int i = 0; i < 10; ++i)
                out->push_back(co_await c.fetchInc(p));
        }(sys.proc(n), counter, &seen));
    }
    runAll(sys);
    std::sort(seen.begin(), seen.end());
    ASSERT_EQ(seen.size(), 40u);
    for (Word i = 0; i < 40; ++i)
        EXPECT_EQ(seen[static_cast<size_t>(i)], i); // a permutation of 0..39
}

TEST(Counter, VariableDeltasDistributeRanges)
{
    // The Transitive Closure usage pattern: fetch_and_add with variable
    // job sizes must hand out disjoint, gap-free ranges.
    System sys(smallConfig(SyncPolicy::UNC, 4));
    LockFreeCounter counter(sys, Primitive::FAP);
    struct Range { Word start, len; };
    std::vector<Range> ranges;
    for (NodeId n = 0; n < 4; ++n) {
        sys.spawn([](Proc &p, LockFreeCounter &c, NodeId id,
                     std::vector<Range> *out) -> Task {
            for (int i = 0; i < 8; ++i) {
                Word len = 1 + (static_cast<Word>(id) + i) % 5;
                Word start = co_await c.fetchAdd(p, len);
                out->push_back({start, len});
            }
        }(sys.proc(n), counter, n, &ranges));
    }
    runAll(sys);
    std::sort(ranges.begin(), ranges.end(),
              [](const Range &a, const Range &b) {
                  return a.start < b.start;
              });
    Word expect = 0;
    for (const Range &r : ranges) {
        EXPECT_EQ(r.start, expect);
        expect = r.start + r.len;
    }
    EXPECT_EQ(sys.debugRead(counter.addr()), expect);
}

TEST(Counter, FailedAttemptsOnlyWithOptimisticPrimitives)
{
    System sys(smallConfig(SyncPolicy::INV, 8));
    LockFreeCounter counter(sys, Primitive::FAP);
    for (NodeId n = 0; n < 8; ++n)
        sys.spawn(incLoop(sys.proc(n), counter, 20));
    runAll(sys);
    EXPECT_EQ(counter.failedAttempts(), 0u); // native FAA never retries
}
