/** @file Unit tests for System assembly, allocation, and run control. */

#include <gtest/gtest.h>

#include "helpers.hh"

using namespace dsmtest;

TEST(System, HomeIsBlockInterleaved)
{
    System sys(smallConfig());
    EXPECT_EQ(sys.homeOf(0x00), 0);
    EXPECT_EQ(sys.homeOf(0x20), 1);
    EXPECT_EQ(sys.homeOf(0x40), 2);
    EXPECT_EQ(sys.homeOf(0x60), 3);
    EXPECT_EQ(sys.homeOf(0x80), 0);
    EXPECT_EQ(sys.homeOf(0x27), 1); // within the block
}

TEST(System, AllocRespectsAlignment)
{
    System sys(smallConfig());
    Addr a = sys.alloc(1, 1);
    Addr b = sys.alloc(8, 8);
    Addr c = sys.alloc(4, 32);
    EXPECT_EQ(b % 8, 0u);
    EXPECT_EQ(c % 32, 0u);
    EXPECT_LT(a, b);
    EXPECT_LT(b, c);
}

TEST(System, AllocAtPlacesHome)
{
    System sys(smallConfig());
    for (NodeId n = 0; n < 4; ++n) {
        Addr a = sys.allocAt(n, 8);
        EXPECT_EQ(sys.homeOf(a), n);
    }
}

TEST(System, AllocSyncMarksBlock)
{
    Config cfg = smallConfig(SyncPolicy::UNC);
    System sys(cfg);
    Addr s = sys.allocSync();
    Addr o = sys.alloc(8);
    EXPECT_TRUE(sys.isSync(s));
    EXPECT_TRUE(sys.isSync(s + 8)); // whole block is sync
    EXPECT_FALSE(sys.isSync(o));
    EXPECT_EQ(sys.policyOf(s), SyncPolicy::UNC);
    EXPECT_EQ(sys.policyOf(o), SyncPolicy::INV);
}

TEST(System, SyncVariablesDoNotShareBlocks)
{
    System sys(smallConfig());
    Addr a = sys.allocSync();
    Addr b = sys.allocSync();
    EXPECT_NE(blockBase(a), blockBase(b));
}

TEST(System, DebugReadSeesMemoryAndCaches)
{
    System sys(smallConfig());
    Addr a = sys.alloc(8);
    sys.writeInit(a, 5);
    EXPECT_EQ(sys.debugRead(a), 5u);
    runOp(sys, 1, AtomicOp::STORE, a, 6); // dirty in node 1's cache
    EXPECT_EQ(sys.debugRead(a), 6u);
}

TEST(System, RunReportsCompletion)
{
    System sys(smallConfig());
    Addr a = sys.alloc(8);
    sys.spawn(doStore(sys.proc(0), a, 1));
    RunResult r = sys.run();
    EXPECT_TRUE(r.completed);
    EXPECT_FALSE(r.deadlocked);
    EXPECT_GT(r.events, 0u);
    EXPECT_EQ(sys.tasksPending(), 0);
}

TEST(System, DetectsDeadlock)
{
    System sys(smallConfig());
    // A barrier expecting 2 arrivals gets only 1: guaranteed deadlock.
    SyncBarrier bar(sys, 2);
    sys.spawn([](Proc &p, SyncBarrier &b) -> Task {
        co_await p.compute(5);
        co_await b.arrive();
    }(sys.proc(0), bar));
    RunResult r = sys.run();
    EXPECT_FALSE(r.completed);
    EXPECT_TRUE(r.deadlocked);
    EXPECT_EQ(sys.tasksPending(), 1);
}

TEST(System, SequentialRunsCompose)
{
    System sys(smallConfig());
    Addr a = sys.alloc(8);
    for (int i = 1; i <= 5; ++i) {
        sys.spawn(doStore(sys.proc(i % 4), a, static_cast<Word>(i)));
        RunResult r = sys.run();
        ASSERT_TRUE(r.completed);
        sys.reapTasks();
        EXPECT_EQ(sys.debugRead(a), static_cast<Word>(i));
    }
}

TEST(System, ComputeAdvancesTime)
{
    System sys(smallConfig());
    Tick before = sys.now();
    sys.spawn([](Proc &p) -> Task { co_await p.compute(123); }(
        sys.proc(0)));
    runAll(sys);
    EXPECT_GE(sys.now(), before + 123);
}

TEST(System, MagicBarrierSynchronizesAtOneTick)
{
    System sys(smallConfig());
    SyncBarrier bar(sys, 4);
    std::vector<Tick> release(4, 0);
    for (NodeId n = 0; n < 4; ++n) {
        sys.spawn([](Proc &p, SyncBarrier &b, Tick delay,
                     Tick *out) -> Task {
            co_await p.compute(delay);
            co_await b.arrive();
            *out = p.sys().now();
        }(sys.proc(n), bar, static_cast<Tick>(10 * (n + 1)),
          &release[static_cast<size_t>(n)]));
    }
    runAll(sys);
    EXPECT_EQ(bar.rounds(), 1u);
    for (int n = 1; n < 4; ++n)
        EXPECT_EQ(release[static_cast<size_t>(n)], release[0]);
    EXPECT_EQ(release[0], 40u + smallConfig().machine.magic_barrier_cost);
}

TEST(System, MagicBarrierIsReusable)
{
    System sys(smallConfig());
    SyncBarrier bar(sys, 4);
    int done = 0;
    for (NodeId n = 0; n < 4; ++n) {
        sys.spawn([](SyncBarrier &b, int rounds, int *d) -> Task {
            for (int i = 0; i < rounds; ++i)
                co_await b.arrive();
            ++*d;
        }(bar, 10, &done));
    }
    runAll(sys);
    EXPECT_EQ(done, 4);
    EXPECT_EQ(bar.rounds(), 10u);
}

TEST(System, DeterministicAcrossIdenticalRuns)
{
    auto run_once = [] {
        System sys(smallConfig(SyncPolicy::INV, 8));
        Addr a = sys.allocSync();
        for (NodeId n = 0; n < 8; ++n) {
            sys.spawn([](Proc &p, Addr addr) -> Task {
                for (int i = 0; i < 20; ++i)
                    co_await p.fetchAdd(addr, 1);
            }(sys.proc(n), a));
        }
        sys.run();
        return sys.now();
    };
    EXPECT_EQ(run_once(), run_once());
}
