/** @file Tests of the Transitive Closure application (Figure 1). */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "workloads/transitive_closure.hh"

using namespace dsmtest;

TEST(TransitiveClosure, ReferenceClosureBasics)
{
    // 0 -> 1 -> 2: closure adds 0 -> 2.
    int n = 3;
    std::vector<std::uint8_t> e(9, 0);
    e[0 * 3 + 1] = 1;
    e[1 * 3 + 2] = 1;
    auto c = referenceClosure(e, n);
    EXPECT_EQ(c[0 * 3 + 1], 1);
    EXPECT_EQ(c[1 * 3 + 2], 1);
    EXPECT_EQ(c[0 * 3 + 2], 1);
    EXPECT_EQ(c[2 * 3 + 0], 0);
}

TEST(TransitiveClosure, ReferenceClosureCycle)
{
    int n = 4;
    std::vector<std::uint8_t> e(16, 0);
    e[0 * 4 + 1] = 1;
    e[1 * 4 + 2] = 1;
    e[2 * 4 + 0] = 1;
    auto c = referenceClosure(e, n);
    // All pairs within the cycle are reachable.
    for (int a : {0, 1, 2}) {
        for (int b : {0, 1, 2}) {
            if (a != b) {
                EXPECT_EQ(c[a * 4 + b], 1) << a << "->" << b;
            }
        }
    }
    EXPECT_EQ(c[3 * 4 + 0], 0);
}

class TcPrimPolicy
    : public testing::TestWithParam<std::tuple<Primitive, SyncPolicy>>
{
};

TEST_P(TcPrimPolicy, ParallelMatchesSequential)
{
    auto [prim, pol] = GetParam();
    System sys(smallConfig(pol, 8));
    TcConfig cfg;
    cfg.size = 20;
    cfg.prim = prim;
    cfg.edge_pct = 10;
    cfg.seed = 77;
    TcResult r = runTransitiveClosure(sys, cfg);
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.correct);
    EXPECT_GT(r.counter_fetches, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, TcPrimPolicy,
    testing::Combine(testing::Values(Primitive::FAP, Primitive::CAS,
                                     Primitive::LLSC),
                     testing::Values(SyncPolicy::INV, SyncPolicy::UPD,
                                     SyncPolicy::UNC)),
    [](const auto &info) {
        return std::string(toString(std::get<0>(info.param))) + "_" +
               toString(std::get<1>(info.param));
    });

TEST(TransitiveClosure, DenseGraphFullClosure)
{
    System sys(smallConfig(SyncPolicy::UNC, 4));
    TcConfig cfg;
    cfg.size = 12;
    cfg.prim = Primitive::FAP;
    cfg.edge_pct = 60;
    cfg.seed = 5;
    TcResult r = runTransitiveClosure(sys, cfg);
    EXPECT_TRUE(r.correct);
}

TEST(TransitiveClosure, EmptyGraphIsFixedPoint)
{
    System sys(smallConfig(SyncPolicy::INV, 4));
    TcConfig cfg;
    cfg.size = 10;
    cfg.prim = Primitive::CAS;
    cfg.edge_pct = 0;
    TcResult r = runTransitiveClosure(sys, cfg);
    EXPECT_TRUE(r.correct);
}

TEST(TransitiveClosure, HighContentionOnCounterIsObserved)
{
    // The paper attributes TC's very high contention to the frequent
    // barriers aligning all processors onto the counter at once.
    System sys(smallConfig(SyncPolicy::UNC, 16));
    TcConfig cfg;
    cfg.size = 24;
    cfg.prim = Primitive::FAP;
    cfg.edge_pct = 10;
    TcResult r = runTransitiveClosure(sys, cfg);
    ASSERT_TRUE(r.correct);
    sys.sharing().finalize();
    EXPECT_GE(sys.sharing().contention().max(), 8u);
    // Write runs on the counter stay near 1 (Section 4.2).
    EXPECT_LT(sys.sharing().averageWriteRun(), 1.6);
}
