/**
 * @file
 * Tests for spurious reservation invalidation (Section 2.1): on real
 * processors reservations vanish on context switches; retrying LL/SC
 * loops must still make progress, and the UPD-policy suppression of
 * same-value updates must not mask real writes.
 */

#include <gtest/gtest.h>

#include "helpers.hh"

using namespace dsmtest;

TEST(SpuriousResv, ScFailsAfterSpuriousInvalidation)
{
    Config cfg = smallConfig(SyncPolicy::INV);
    cfg.machine.spurious_resv_period = 40;
    System sys(cfg);
    Addr a = sys.allocSync();
    OpResult sc;
    sys.spawn([](Proc &p, Addr addr, OpResult *out) -> Task {
        co_await p.ll(addr);
        co_await p.compute(100); // straddles an invalidation tick
        *out = co_await p.sc(addr, 7);
    }(sys.proc(0), a, &sc));
    runAll(sys);
    EXPECT_FALSE(sc.success);
    EXPECT_EQ(sys.debugRead(a), 0u);
}

TEST(SpuriousResv, RetryLoopsStillMakeProgress)
{
    // "We can ignore these spurious invalidations with respect to
    // lock-freedom, so long as we always try again."
    Config cfg = smallConfig(SyncPolicy::INV, 8);
    cfg.machine.spurious_resv_period = 25;
    System sys(cfg);
    Addr a = sys.allocSync();
    for (NodeId n = 0; n < 8; ++n) {
        sys.spawn([](Proc &p, Addr addr, int cnt) -> Task {
            for (int i = 0; i < cnt; ++i) {
                for (;;) {
                    Word old = (co_await p.ll(addr)).value;
                    if ((co_await p.sc(addr, old + 1)).success)
                        break;
                }
            }
        }(sys.proc(n), a, 15));
    }
    runAll(sys);
    EXPECT_EQ(sys.debugRead(a), 120u);
    EXPECT_GT(sys.stats().sc_failures + sys.stats().sc_local_failures,
              0u);
}

TEST(SpuriousResv, DisabledByDefault)
{
    Config cfg = smallConfig(SyncPolicy::INV);
    EXPECT_EQ(cfg.machine.spurious_resv_period, 0u);
    System sys(cfg);
    Addr a = sys.allocSync();
    OpResult sc;
    sys.spawn([](Proc &p, Addr addr, OpResult *out) -> Task {
        co_await p.ll(addr);
        co_await p.compute(1000);
        *out = co_await p.sc(addr, 7);
    }(sys.proc(0), a, &sc));
    runAll(sys);
    EXPECT_TRUE(sc.success);
}

// ----- UPD same-value update suppression (Section 4.3.1) -----

TEST(UpdSuppression, SameValueWriteSendsNoUpdates)
{
    System sys(smallConfig(SyncPolicy::UPD));
    Addr a = sys.allocSync();
    sys.writeInit(a, 1);
    runOp(sys, 1, AtomicOp::LOAD, a); // a remote sharer
    clearStats(sys);
    runOp(sys, 0, AtomicOp::TAS, a); // failed TAS: writes 1 over 1
    EXPECT_EQ(sys.stats().updates, 0u);
}

TEST(UpdSuppression, ChangedValueStillUpdates)
{
    System sys(smallConfig(SyncPolicy::UPD));
    Addr a = sys.allocSync();
    runOp(sys, 1, AtomicOp::LOAD, a);
    clearStats(sys);
    runOp(sys, 0, AtomicOp::TAS, a); // successful TAS: 0 -> 1
    EXPECT_EQ(sys.stats().updates, 1u);
    // The sharer's copy was refreshed.
    EXPECT_EQ(runOp(sys, 1, AtomicOp::LOAD, a).value, 1u);
}

TEST(UpdSuppression, SerialStillAdvancesOnSameValueWrite)
{
    // Suppressing update *messages* must not suppress the write count:
    // serial-number SC semantics depend on it.
    System sys(smallConfig(SyncPolicy::UPD));
    Addr a = sys.allocSync();
    sys.writeInit(a, 5);
    Word s0 = runOp(sys, 0, AtomicOp::LLS, a).serial;
    runOp(sys, 1, AtomicOp::STORE, a, 5); // same value
    OpResult sc = runOp(sys, 0, AtomicOp::SCS, a, 9, s0);
    EXPECT_FALSE(sc.success); // the intervening write is visible
}
