/** @file Directed tests of protocol race handling (NACK/retry paths). */

#include <gtest/gtest.h>

#include "helpers.hh"

using namespace dsmtest;

namespace {

/** Two procs store concurrently, many times. */
Task
hammerStores(Proc &p, Addr a, int n)
{
    for (int i = 0; i < n; ++i)
        co_await p.store(a, static_cast<Word>(p.id() * 1000 + i));
}

} // namespace

TEST(ProtocolRaces, ConcurrentWritersConverge)
{
    System sys(smallConfig());
    Addr a = sys.alloc(WORD_BYTES);
    for (NodeId n = 0; n < 4; ++n)
        sys.spawn(hammerStores(sys.proc(n), a, 50));
    runAll(sys);
    // The final value must be some processor's last store.
    Word v = sys.debugRead(a);
    bool plausible = false;
    for (NodeId n = 0; n < 4; ++n)
        if (v == static_cast<Word>(n * 1000 + 49))
            plausible = true;
    EXPECT_TRUE(plausible) << "final value " << v;
}

TEST(ProtocolRaces, ReadersAndWritersMix)
{
    System sys(smallConfig());
    Addr a = sys.alloc(WORD_BYTES);
    sys.spawn(hammerStores(sys.proc(0), a, 100));
    for (NodeId n = 1; n < 4; ++n) {
        sys.spawn([](Proc &p, Addr addr, int cnt) -> Task {
            Word prev = 0;
            for (int i = 0; i < cnt; ++i) {
                Word v = (co_await p.load(addr)).value;
                // Writer 0 writes increasing values; reads must not go
                // backwards (coherence, single writer).
                EXPECT_GE(v, prev);
                prev = v;
            }
        }(sys.proc(n), a, 60));
    }
    runAll(sys);
}

TEST(ProtocolRaces, DropCopyRacesWithRemoteRequest)
{
    // The paper's drop_copy hazard: "an exclusive cache line may be
    // dropped just when its owner is about to receive a remote request
    // ... the local node replies with a negative acknowledgment, and the
    // remote node has to repeat its request."
    System sys(smallConfig());
    Addr a = sys.alloc(WORD_BYTES);
    for (int round = 0; round < 20; ++round) {
        sys.spawn([](Proc &p, Addr addr) -> Task {
            co_await p.store(addr, 1);
            co_await p.dropCopy(addr);
        }(sys.proc(0), a));
        sys.spawn([](Proc &p, Addr addr) -> Task {
            co_await p.store(addr, 2);
        }(sys.proc(1), a));
        runAll(sys);
    }
    // No deadlock, and the line is readable with a sane value.
    Word v = sys.debugRead(a);
    EXPECT_TRUE(v == 1 || v == 2);
}

TEST(ProtocolRaces, EvictionRacesWithForward)
{
    // Tiny cache forces eviction of exclusive lines while other procs
    // request them, exercising FWD_NACK_WB.
    Config cfg = smallConfig();
    cfg.machine.cache_sets = 1;
    cfg.machine.cache_ways = 1;
    System sys(cfg);
    Addr a = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    Addr b = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    Addr c = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    for (NodeId n = 0; n < 4; ++n) {
        sys.spawn([](Proc &p, Addr x, Addr y, Addr z, int rounds) -> Task {
            for (int i = 0; i < rounds; ++i) {
                co_await p.store(x, 1);
                co_await p.store(y, 2); // evicts x
                co_await p.store(z, 3); // evicts y
                co_await p.load(x);
            }
        }(sys.proc(n), a, b, c, 25));
    }
    runAll(sys);
    EXPECT_EQ(sys.debugRead(a), 1u);
    EXPECT_EQ(sys.debugRead(b), 2u);
    EXPECT_EQ(sys.debugRead(c), 3u);
}

TEST(ProtocolRaces, UpgradeRace)
{
    // Two sharers both try to upgrade; one wins, the other is NACKed,
    // retries with GET_X, and still completes.
    System sys(smallConfig());
    Addr a = sys.alloc(WORD_BYTES);
    sys.writeInit(a, 0);
    for (int round = 0; round < 25; ++round) {
        // Both become sharers.
        sys.spawn(doLoadVoid(sys.proc(0), a));
        sys.spawn(doLoadVoid(sys.proc(1), a));
        runAll(sys);
        // Both upgrade simultaneously.
        sys.spawn(hammerStores(sys.proc(0), a, 1));
        sys.spawn(hammerStores(sys.proc(1), a, 1));
        runAll(sys);
    }
    Word v = sys.debugRead(a);
    EXPECT_TRUE(v == 0u || v == 1000u);
}

TEST(ProtocolRaces, AtomicContentionUnderEveryPolicy)
{
    for (SyncPolicy pol :
         {SyncPolicy::INV, SyncPolicy::UPD, SyncPolicy::UNC}) {
        System sys(smallConfig(pol, 8));
        Addr a = sys.allocSync();
        for (NodeId n = 0; n < 8; ++n) {
            sys.spawn([](Proc &p, Addr addr, int cnt) -> Task {
                for (int i = 0; i < cnt; ++i)
                    co_await p.fetchAdd(addr, 1);
            }(sys.proc(n), a, 40));
        }
        RunResult r = sys.run();
        ASSERT_TRUE(r.completed) << toString(pol);
        EXPECT_EQ(sys.debugRead(a), 320u) << toString(pol);
        sys.reapTasks();
    }
}

TEST(ProtocolRaces, MixedSyncAndOrdinaryTrafficOnSameHome)
{
    System sys(smallConfig(SyncPolicy::INV, 4));
    Addr s = sys.allocSyncAt(2);
    Addr o = sys.allocAt(2, BLOCK_BYTES);
    for (NodeId n = 0; n < 4; ++n) {
        sys.spawn([](Proc &p, Addr sync_a, Addr ord, int cnt) -> Task {
            for (int i = 0; i < cnt; ++i) {
                co_await p.fetchAdd(sync_a, 1);
                Word v = (co_await p.load(ord)).value;
                co_await p.store(ord, v + 1);
            }
        }(sys.proc(n), s, o, 30));
    }
    runAll(sys);
    EXPECT_EQ(sys.debugRead(s), 120u);
    // The ordinary counter is racy by design; it just must be sane.
    EXPECT_LE(sys.debugRead(o), 120u);
    EXPECT_GE(sys.debugRead(o), 1u);
}
