/** @file Unit tests for directory entries. */

#include <gtest/gtest.h>

#include "mem/directory.hh"

using namespace dsm;

TEST(Directory, EntriesStartUncached)
{
    Directory d;
    DirEntry &e = d.entry(0x40);
    EXPECT_EQ(e.state, DirState::UNCACHED);
    EXPECT_EQ(e.sharers, 0u);
    EXPECT_EQ(e.owner, INVALID_NODE);
    EXPECT_FALSE(e.busy);
}

TEST(Directory, EntryIsPerBlock)
{
    Directory d;
    d.entry(0x40).addSharer(3);
    EXPECT_TRUE(d.entry(0x48).isSharer(3)); // same block
    EXPECT_FALSE(d.entry(0x60).isSharer(3)); // next block
    EXPECT_EQ(d.size(), 2u);
}

TEST(Directory, SharerBitVector)
{
    DirEntry e;
    e.addSharer(0);
    e.addSharer(63);
    e.addSharer(17);
    EXPECT_TRUE(e.isSharer(0));
    EXPECT_TRUE(e.isSharer(63));
    EXPECT_TRUE(e.isSharer(17));
    EXPECT_FALSE(e.isSharer(1));
    EXPECT_EQ(e.numSharers(), 3);
    e.removeSharer(17);
    EXPECT_FALSE(e.isSharer(17));
    EXPECT_EQ(e.numSharers(), 2);
}

TEST(Directory, ReservationVector)
{
    DirEntry e;
    EXPECT_FALSE(e.hasReservation(5));
    e.setReservation(5);
    e.setReservation(9);
    EXPECT_TRUE(e.hasReservation(5));
    EXPECT_TRUE(e.hasReservation(9));
    e.clearReservations();
    EXPECT_FALSE(e.hasReservation(5));
    EXPECT_FALSE(e.hasReservation(9));
}

TEST(Directory, SerialNumberMonotone)
{
    DirEntry e;
    EXPECT_EQ(e.serial, 0u);
    e.bumpSerial();
    e.bumpSerial();
    EXPECT_EQ(e.serial, 2u);
}

TEST(Directory, FindDoesNotCreate)
{
    Directory d;
    EXPECT_EQ(d.find(0x40), nullptr);
    d.entry(0x40);
    EXPECT_NE(d.find(0x40), nullptr);
    EXPECT_EQ(d.size(), 1u);
}
