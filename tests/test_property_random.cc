/**
 * @file
 * Randomized property tests: "operation soup" across processors,
 * policies, and primitives, checked against invariants that must hold
 * for any interleaving (atomicity of read-modify-writes, coherence of
 * the final state, conservation under mixed traffic).
 */

#include <gtest/gtest.h>

#include <set>

#include "helpers.hh"
#include "sim/rng.hh"

using namespace dsmtest;

namespace {

struct SoupParams
{
    SyncPolicy policy;
    std::uint64_t seed;
};

std::string
soupName(const testing::TestParamInfo<SoupParams> &info)
{
    return std::string(toString(info.param.policy)) + "_s" +
           std::to_string(info.param.seed);
}

std::vector<SoupParams>
soupCases()
{
    std::vector<SoupParams> v;
    for (SyncPolicy pol :
         {SyncPolicy::INV, SyncPolicy::UPD, SyncPolicy::UNC})
        for (std::uint64_t s : {1ULL, 2ULL, 3ULL})
            v.push_back({pol, s});
    return v;
}

/**
 * Each processor performs random increments on random counters; every
 * increment uses a randomly chosen mechanism (native FAA, CAS loop,
 * LL/SC loop). Total must be conserved.
 */
Task
soupThread(Proc &p, std::vector<Addr> counters, std::uint64_t seed,
           int ops, std::uint64_t *performed)
{
    Rng rng(seed);
    for (int i = 0; i < ops; ++i) {
        Addr a = counters[rng.below(counters.size())];
        switch (rng.below(3)) {
          case 0:
            co_await p.fetchAdd(a, 1);
            break;
          case 1:
            for (;;) {
                Word old = (co_await p.load(a)).value;
                if ((co_await p.cas(a, old, old + 1)).success)
                    break;
            }
            break;
          default:
            for (;;) {
                Word old = (co_await p.ll(a)).value;
                if ((co_await p.sc(a, old + 1)).success)
                    break;
            }
            break;
        }
        ++*performed;
        if (rng.chance(1, 4))
            co_await p.compute(rng.range(1, 30));
        if (rng.chance(1, 10))
            co_await p.dropCopy(a);
    }
}

} // namespace

class OpSoup : public testing::TestWithParam<SoupParams>
{
};

TEST_P(OpSoup, IncrementsAreConserved)
{
    System sys(smallConfig(GetParam().policy, 8));
    std::vector<Addr> counters;
    for (int i = 0; i < 5; ++i)
        counters.push_back(sys.allocSync());
    std::uint64_t performed = 0;
    const int ops = 60;
    for (NodeId n = 0; n < 8; ++n)
        sys.spawn(soupThread(sys.proc(n), counters,
                             GetParam().seed * 97 +
                                 static_cast<std::uint64_t>(n),
                             ops, &performed));
    runAll(sys);
    EXPECT_EQ(performed, 8u * ops);
    Word total = 0;
    for (Addr a : counters)
        total += sys.debugRead(a);
    EXPECT_EQ(total, 8u * ops);
}

INSTANTIATE_TEST_SUITE_P(Soups, OpSoup, testing::ValuesIn(soupCases()),
                         soupName);

namespace {

/** Random swaps of distinct tokens between slots conserve the multiset
 *  of tokens (needs atomic fetch_and_store). */
Task
swapThread(Proc &p, std::vector<Addr> slots, std::uint64_t seed, int ops,
           Word *final_held)
{
    Rng rng(seed);
    // Each proc starts holding one unique token: 1000 + id.
    Word held = 1000 + static_cast<Word>(p.id());
    for (int i = 0; i < ops; ++i) {
        Addr a = slots[rng.below(slots.size())];
        held = (co_await p.fetchStore(a, held)).value;
        if (rng.chance(1, 3))
            co_await p.compute(rng.range(1, 20));
    }
    *final_held = held;
}

} // namespace

TEST(OpSoupSwap, TokensAreConservedUnderFetchStore)
{
    for (SyncPolicy pol :
         {SyncPolicy::INV, SyncPolicy::UPD, SyncPolicy::UNC}) {
        System sys(smallConfig(pol, 8));
        std::vector<Addr> slots;
        for (int i = 0; i < 4; ++i) {
            Addr a = sys.allocSync();
            sys.writeInit(a, 2000 + static_cast<Word>(i));
            slots.push_back(a);
        }
        std::vector<Word> held(8, 0);
        for (NodeId n = 0; n < 8; ++n)
            sys.spawn(swapThread(sys.proc(n), slots,
                                 500 + static_cast<std::uint64_t>(n), 40,
                                 &held[static_cast<size_t>(n)]));
        runAll(sys);
        // The multiset of (slot contents + held tokens) is invariant
        // under atomic swaps.
        std::multiset<Word> tokens;
        for (Addr a : slots)
            tokens.insert(sys.debugRead(a));
        for (Word h : held)
            tokens.insert(h);
        std::multiset<Word> expect;
        for (int i = 0; i < 4; ++i)
            expect.insert(2000 + static_cast<Word>(i));
        for (int i = 0; i < 8; ++i)
            expect.insert(1000 + static_cast<Word>(i));
        EXPECT_EQ(tokens, expect) << toString(pol);
    }
}

TEST(OpSoupMixed, RandomOpsNeverWedgeTheProtocol)
{
    // Fuzz: fully random operation streams on a handful of blocks with a
    // tiny cache (to force eviction races). The only requirement is that
    // the system never deadlocks and debugRead stays callable.
    for (std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
        Config cfg = smallConfig(SyncPolicy::INV, 8);
        cfg.machine.cache_sets = 2;
        cfg.machine.cache_ways = 1;
        System sys(cfg);
        std::vector<Addr> addrs;
        for (int i = 0; i < 6; ++i)
            addrs.push_back(i % 2 == 0 ? sys.allocSync()
                                       : sys.alloc(8, 8));
        for (NodeId n = 0; n < 8; ++n) {
            sys.spawn([](Proc &p, std::vector<Addr> as,
                         std::uint64_t s) -> Task {
                Rng rng(s);
                for (int i = 0; i < 80; ++i) {
                    Addr a = as[rng.below(as.size())];
                    switch (rng.below(8)) {
                      case 0: co_await p.load(a); break;
                      case 1: co_await p.store(a, rng.next()); break;
                      case 2: co_await p.fetchAdd(a, 1); break;
                      case 3: co_await p.cas(a, rng.below(4),
                                             rng.below(4)); break;
                      case 4: co_await p.ll(a); break;
                      case 5: co_await p.sc(a, rng.below(9)); break;
                      case 6: co_await p.loadExclusive(a); break;
                      default: co_await p.dropCopy(a); break;
                    }
                }
            }(sys.proc(n), addrs, seed * 131 +
                                      static_cast<std::uint64_t>(n)));
        }
        RunResult r = sys.run();
        EXPECT_TRUE(r.completed) << "seed " << seed;
        expectCoherent(sys);
        for (Addr a : addrs)
            (void)sys.debugRead(a);
        sys.reapTasks();
    }
}
