/**
 * @file
 * Parameterized hardware-model sweeps: the protocol must stay correct
 * (and the coherence invariants must hold) across machine sizes, cache
 * geometries, and latency parameters.
 */

#include <gtest/gtest.h>

#include "helpers.hh"

using namespace dsmtest;

// ----- machine-size sweep -----

class MachineSize : public testing::TestWithParam<int>
{
};

TEST_P(MachineSize, ContendedCounterIsExact)
{
    int procs = GetParam();
    for (SyncPolicy pol :
         {SyncPolicy::INV, SyncPolicy::UPD, SyncPolicy::UNC}) {
        System sys(smallConfig(pol, procs));
        Addr a = sys.allocSync();
        for (NodeId n = 0; n < procs; ++n) {
            sys.spawn([](Proc &p, Addr addr, int cnt) -> Task {
                for (int i = 0; i < cnt; ++i)
                    co_await p.fetchAdd(addr, 1);
            }(sys.proc(n), a, 10));
        }
        runAll(sys);
        EXPECT_EQ(sys.debugRead(a), static_cast<Word>(procs) * 10)
            << toString(pol) << " p=" << procs;
    }
}

TEST_P(MachineSize, HomeInterleavingCoversAllNodes)
{
    int procs = GetParam();
    System sys(smallConfig(SyncPolicy::INV, procs));
    std::vector<bool> seen(static_cast<size_t>(procs), false);
    for (int b = 0; b < procs * 2; ++b)
        seen[static_cast<size_t>(
            sys.homeOf(static_cast<Addr>(b) * BLOCK_BYTES))] = true;
    for (int n = 0; n < procs; ++n)
        EXPECT_TRUE(seen[static_cast<size_t>(n)]) << "node " << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, MachineSize,
                         testing::Values(1, 2, 4, 8, 16, 64),
                         [](const auto &info) {
                             return "p" + std::to_string(info.param);
                         });

// ----- cache-geometry sweep -----

struct CacheGeom
{
    unsigned sets;
    unsigned ways;
};

class CacheGeometry : public testing::TestWithParam<CacheGeom>
{
};

TEST_P(CacheGeometry, MixedTrafficStaysCoherent)
{
    Config cfg = smallConfig(SyncPolicy::INV, 4);
    cfg.machine.cache_sets = GetParam().sets;
    cfg.machine.cache_ways = GetParam().ways;
    System sys(cfg);
    Addr s = sys.allocSync();
    std::vector<Addr> blocks;
    for (int i = 0; i < 12; ++i)
        blocks.push_back(sys.alloc(BLOCK_BYTES, BLOCK_BYTES));
    for (NodeId n = 0; n < 4; ++n) {
        sys.spawn([](Proc &p, Addr sync_a, std::vector<Addr> bs,
                     int cnt) -> Task {
            for (int i = 0; i < cnt; ++i) {
                co_await p.fetchAdd(sync_a, 1);
                Addr b = bs[static_cast<size_t>(
                    (i * 7 + p.id()) % bs.size())];
                Word v = (co_await p.load(b)).value;
                co_await p.store(b, v + 1);
            }
        }(sys.proc(n), s, blocks, 25));
    }
    runAll(sys); // includes the coherence check
    EXPECT_EQ(sys.debugRead(s), 100u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    testing::Values(CacheGeom{1, 1}, CacheGeom{1, 4}, CacheGeom{4, 1},
                    CacheGeom{16, 2}, CacheGeom{512, 2}),
    [](const auto &info) {
        return "s" + std::to_string(info.param.sets) + "w" +
               std::to_string(info.param.ways);
    });

// ----- latency-parameter sweep -----

struct LatencyCase
{
    Tick mem;
    Tick hop;
    Tick flit;
};

class LatencyParams : public testing::TestWithParam<LatencyCase>
{
};

TEST_P(LatencyParams, ProtocolCorrectUnderAnyTiming)
{
    Config cfg = smallConfig(SyncPolicy::INV, 4);
    cfg.machine.mem_service_time = GetParam().mem;
    cfg.machine.hop_latency = GetParam().hop;
    cfg.machine.flit_latency = GetParam().flit;
    System sys(cfg);
    Addr a = sys.allocSync();
    Addr b = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    for (NodeId n = 0; n < 4; ++n) {
        sys.spawn([](Proc &p, Addr sync_a, Addr ord, int cnt) -> Task {
            for (int i = 0; i < cnt; ++i) {
                for (;;) {
                    Word old = (co_await p.ll(sync_a)).value;
                    if ((co_await p.sc(sync_a, old + 1)).success)
                        break;
                }
                co_await p.load(ord);
            }
        }(sys.proc(n), a, b, 15));
    }
    runAll(sys);
    EXPECT_EQ(sys.debugRead(a), 60u);
}

INSTANTIATE_TEST_SUITE_P(
    Latencies, LatencyParams,
    testing::Values(LatencyCase{1, 1, 1}, LatencyCase{5, 1, 2},
                    LatencyCase{20, 2, 1}, LatencyCase{100, 10, 4},
                    LatencyCase{20, 0, 1}),
    [](const auto &info) {
        return "m" + std::to_string(info.param.mem) + "h" +
               std::to_string(info.param.hop) + "f" +
               std::to_string(info.param.flit);
    });

// ----- mesh-shape sweep -----

TEST(MeshShapes, NonSquareMeshesWork)
{
    for (auto [x, y] : {std::pair{8, 2}, std::pair{2, 8},
                        std::pair{16, 1}, std::pair{1, 16}}) {
        Config cfg;
        cfg.machine.num_procs = 16;
        cfg.machine.mesh_x = x;
        cfg.machine.mesh_y = y;
        System sys(cfg);
        Addr a = sys.allocSync();
        for (NodeId n = 0; n < 16; ++n)
            sys.spawn(doOp(sys.proc(n), AtomicOp::FAA, a, 1, 0,
                           nullptr));
        RunResult r = sys.run();
        EXPECT_TRUE(r.completed) << x << "x" << y;
        EXPECT_EQ(sys.debugRead(a), 16u) << x << "x" << y;
        sys.reapTasks();
    }
}
