/** @file Priority lock tests. */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "sync/priority_lock.hh"

using namespace dsmtest;

class PriorityLockMatrix
    : public testing::TestWithParam<std::tuple<Primitive, SyncPolicy>>
{
};

TEST_P(PriorityLockMatrix, MutualExclusionAndProgress)
{
    auto [prim, pol] = GetParam();
    System sys(smallConfig(pol, 8));
    PriorityLock lock(sys, prim);
    Addr counter = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    Addr inside = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    bool violation = false;
    const int per_proc = 8;
    for (NodeId n = 0; n < 8; ++n) {
        sys.spawn([](Proc &p, PriorityLock &l, Addr c, Addr in, int cnt,
                     bool *bad) -> Task {
            for (int i = 0; i < cnt; ++i) {
                co_await l.acquire(p, static_cast<Word>(p.id()) + 1);
                OpResult r = co_await p.load(in);
                if (r.value != 0)
                    *bad = true;
                co_await p.store(in, 1);
                OpResult v = co_await p.load(c);
                co_await p.compute(3);
                co_await p.store(c, v.value + 1);
                co_await p.store(in, 0);
                co_await l.release(p);
            }
        }(sys.proc(n), lock, counter, inside, per_proc, &violation));
    }
    runAll(sys);
    EXPECT_FALSE(violation);
    EXPECT_EQ(sys.debugRead(counter), 64u);
    EXPECT_EQ(sys.debugRead(lock.lockAddr()), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PriorityLockMatrix,
    testing::Combine(testing::Values(Primitive::FAP, Primitive::CAS,
                                     Primitive::LLSC),
                     testing::Values(SyncPolicy::INV, SyncPolicy::UPD,
                                     SyncPolicy::UNC)),
    [](const auto &info) {
        return std::string(toString(std::get<0>(info.param))) + "_" +
               toString(std::get<1>(info.param));
    });

TEST(PriorityLock, HighestPriorityWaiterWinsHandoff)
{
    System sys(smallConfig(SyncPolicy::INV, 8));
    PriorityLock lock(sys, Primitive::CAS);
    std::vector<int> order;
    // Node 0 takes the lock, holds while three waiters with priorities
    // 1, 5, 3 queue up, then releases.
    sys.spawn([](Proc &p, PriorityLock &l,
                 std::vector<int> *ord) -> Task {
        co_await l.acquire(p, 9);
        co_await p.compute(5000); // let all waiters register
        co_await l.release(p);
        (void)ord;
    }(sys.proc(0), lock, &order));
    const Word prios[3] = {1, 5, 3};
    for (int i = 0; i < 3; ++i) {
        sys.spawn([](Proc &p, PriorityLock &l, Word prio,
                     std::vector<int> *ord) -> Task {
            co_await p.compute(100);
            co_await l.acquire(p, prio);
            ord->push_back(static_cast<int>(prio));
            co_await p.compute(50);
            co_await l.release(p);
        }(sys.proc(i + 1), lock, prios[i], &order));
    }
    runAll(sys);
    EXPECT_EQ(order, (std::vector<int>{5, 3, 1}));
    EXPECT_EQ(lock.handoffs(), 3u); // 9->5, 5->3, 3->1
}

TEST(PriorityLock, HandoffCountsOnlyWithWaiters)
{
    System sys(smallConfig(SyncPolicy::INV, 4));
    PriorityLock lock(sys, Primitive::FAP);
    sys.spawn([](Proc &p, PriorityLock &l) -> Task {
        for (int i = 0; i < 5; ++i) {
            co_await l.acquire(p, 1);
            co_await l.release(p);
        }
    }(sys.proc(0), lock));
    runAll(sys);
    EXPECT_EQ(lock.handoffs(), 0u);
}

TEST(PriorityLock, EqualPrioritiesAllServed)
{
    System sys(smallConfig(SyncPolicy::UNC, 8));
    PriorityLock lock(sys, Primitive::LLSC);
    int served = 0;
    for (NodeId n = 0; n < 8; ++n) {
        sys.spawn([](Proc &p, PriorityLock &l, int *s) -> Task {
            co_await l.acquire(p, 4);
            ++*s;
            co_await p.compute(10);
            co_await l.release(p);
        }(sys.proc(n), lock, &served));
    }
    runAll(sys);
    EXPECT_EQ(served, 8);
}
