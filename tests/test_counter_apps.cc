/** @file Tests of the synthetic counter applications (Figures 3-5). */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "workloads/counter_apps.hh"

using namespace dsmtest;

TEST(CounterApps, RunLengthPatterns)
{
    EXPECT_EQ(runLengthPattern(1.0), (std::vector<int>{1}));
    EXPECT_EQ(runLengthPattern(1.5), (std::vector<int>{1, 2}));
    EXPECT_EQ(runLengthPattern(2.0), (std::vector<int>{2}));
    EXPECT_EQ(runLengthPattern(3.0), (std::vector<int>{3}));
    EXPECT_EQ(runLengthPattern(10.0), (std::vector<int>{10}));
}

namespace {

CounterAppResult
runOnce(CounterKind kind, Primitive prim, SyncPolicy pol, int c,
        double a, int procs = 8, int phases = 24)
{
    Config cfg = dsmtest::smallConfig(pol, procs);
    System sys(cfg);
    CounterAppConfig app;
    app.kind = kind;
    app.prim = prim;
    app.contention = c;
    app.write_run = a;
    app.phases = phases;
    return runCounterApp(sys, app);
}

} // namespace

class CounterAppMatrix
    : public testing::TestWithParam<std::tuple<CounterKind, Primitive,
                                               SyncPolicy>>
{
};

TEST_P(CounterAppMatrix, NoContentionRunsCorrectly)
{
    auto [kind, prim, pol] = GetParam();
    CounterAppResult r = runOnce(kind, prim, pol, 1, 1.0);
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.correct);
    EXPECT_EQ(r.updates, 24u); // one update per phase
    EXPECT_GT(r.avg_cycles_per_update, 0.0);
}

TEST_P(CounterAppMatrix, ContendedRunsCorrectly)
{
    auto [kind, prim, pol] = GetParam();
    CounterAppResult r = runOnce(kind, prim, pol, 8, 1.0, 8, 12);
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.correct);
    EXPECT_EQ(r.updates, 8u * 12u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CounterAppMatrix,
    testing::Combine(testing::Values(CounterKind::LOCK_FREE,
                                     CounterKind::TTS, CounterKind::MCS),
                     testing::Values(Primitive::FAP, Primitive::CAS,
                                     Primitive::LLSC),
                     testing::Values(SyncPolicy::INV, SyncPolicy::UPD,
                                     SyncPolicy::UNC)),
    [](const auto &info) {
        std::string s = toString(std::get<0>(info.param));
        for (char &ch : s)
            if (ch == '-')
                ch = '_';
        s += "_";
        s += toString(std::get<1>(info.param));
        s += "_";
        s += toString(std::get<2>(info.param));
        return s;
    });

TEST(CounterApps, WriteRunSweepProducesExpectedUpdateCounts)
{
    for (double a : {1.0, 1.5, 2.0, 3.0}) {
        CounterAppResult r =
            runOnce(CounterKind::LOCK_FREE, Primitive::FAP,
                    SyncPolicy::INV, 1, a, 4, 16);
        ASSERT_TRUE(r.correct);
        // 16 phases, runs follow the pattern of mean a.
        auto pattern = runLengthPattern(a);
        std::uint64_t expect = 0;
        for (int ph = 0; ph < 16; ++ph)
            expect += static_cast<std::uint64_t>(
                pattern[static_cast<size_t>(ph / 4) % pattern.size()]);
        EXPECT_EQ(r.updates, expect) << "a=" << a;
    }
}

TEST(CounterApps, MeasuredWriteRunMatchesParameter)
{
    // The sharing tracker must observe the intended write-run lengths
    // for the lock-free counter with a native fetch_and_add.
    Config cfg = dsmtest::smallConfig(SyncPolicy::INV, 4);
    System sys(cfg);
    CounterAppConfig app;
    app.kind = CounterKind::LOCK_FREE;
    app.prim = Primitive::FAP;
    app.contention = 1;
    app.write_run = 3.0;
    app.phases = 20;
    CounterAppResult r = runCounterApp(sys, app);
    ASSERT_TRUE(r.correct);
    sys.sharing().finalize();
    EXPECT_NEAR(sys.sharing().averageWriteRun(), 3.0, 0.15);
}

TEST(CounterApps, ContentionIsObservedByTracker)
{
    Config cfg = dsmtest::smallConfig(SyncPolicy::UNC, 8);
    System sys(cfg);
    CounterAppConfig app;
    app.kind = CounterKind::LOCK_FREE;
    app.prim = Primitive::FAP;
    app.contention = 8;
    app.phases = 10;
    CounterAppResult r = runCounterApp(sys, app);
    ASSERT_TRUE(r.correct);
    // With 8 processors hitting a queued memory module, overlapping
    // attempts must be common.
    EXPECT_GT(sys.sharing().contention().mean(), 2.0);
    EXPECT_GE(sys.sharing().contention().max(), 6u);
}

TEST(CounterApps, HigherContentionCostsMoreUnderInv)
{
    CounterAppResult low = runOnce(CounterKind::LOCK_FREE,
                                   Primitive::FAP, SyncPolicy::INV, 1,
                                   1.0, 8, 16);
    CounterAppResult high = runOnce(CounterKind::LOCK_FREE,
                                    Primitive::FAP, SyncPolicy::INV, 8,
                                    1.0, 8, 16);
    ASSERT_TRUE(low.correct);
    ASSERT_TRUE(high.correct);
    EXPECT_GT(high.avg_cycles_per_update, low.avg_cycles_per_update);
}
