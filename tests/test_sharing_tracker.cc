/** @file Unit tests for the sharing-pattern trackers (Section 4.2). */

#include <gtest/gtest.h>

#include "stats/sharing_tracker.hh"

using namespace dsm;

TEST(SharingTracker, SingleWriterRunEndsOnOtherAccess)
{
    SharingTracker t;
    t.recordAccess(0x40, 0, true);
    t.recordAccess(0x40, 0, true);
    t.recordAccess(0x40, 0, true);
    t.recordAccess(0x40, 1, false); // read by another proc ends the run
    EXPECT_EQ(t.writeRuns().samples(), 1u);
    EXPECT_DOUBLE_EQ(t.averageWriteRun(), 3.0);
}

TEST(SharingTracker, OwnReadDoesNotBreakRun)
{
    SharingTracker t;
    t.recordAccess(0x40, 2, true);
    t.recordAccess(0x40, 2, false); // own read
    t.recordAccess(0x40, 2, true);
    t.finalize();
    EXPECT_EQ(t.writeRuns().samples(), 1u);
    EXPECT_DOUBLE_EQ(t.averageWriteRun(), 2.0);
}

TEST(SharingTracker, AlternatingWritersGiveRunsOfOne)
{
    SharingTracker t;
    for (int i = 0; i < 10; ++i)
        t.recordAccess(0x40, i % 2, true);
    t.finalize();
    EXPECT_EQ(t.writeRuns().samples(), 10u);
    EXPECT_DOUBLE_EQ(t.averageWriteRun(), 1.0);
}

TEST(SharingTracker, LocationsAreIndependent)
{
    SharingTracker t;
    t.recordAccess(0x40, 0, true);
    t.recordAccess(0x80, 1, true); // different location
    t.recordAccess(0x40, 0, true);
    t.finalize();
    EXPECT_EQ(t.writeRuns().samples(), 2u);
    // Runs: {2} at 0x40 and {1} at 0x80 -> mean 1.5.
    EXPECT_DOUBLE_EQ(t.averageWriteRun(), 1.5);
}

TEST(SharingTracker, AcquireReleasePatternGivesRunsOfTwo)
{
    // A processor acquiring (write) then releasing (write) a lock with
    // no interference produces write runs of exactly 2 -- the paper's
    // LocusRoute/Cholesky observation.
    SharingTracker t;
    for (int p = 0; p < 4; ++p) {
        t.recordAccess(0x40, p, true); // acquire
        t.recordAccess(0x40, p, true); // release
    }
    t.finalize();
    EXPECT_DOUBLE_EQ(t.averageWriteRun(), 2.0);
}

TEST(SharingTracker, ContentionHistogramCountsOverlap)
{
    SharingTracker t;
    t.beginAttempt(0x40, 0); // samples 1
    t.beginAttempt(0x40, 1); // samples 2
    t.beginAttempt(0x40, 2); // samples 3
    t.endAttempt(0x40, 1);
    t.beginAttempt(0x40, 3); // samples 3 again
    EXPECT_EQ(t.contention().samples(), 4u);
    EXPECT_EQ(t.contention().count(1), 1u);
    EXPECT_EQ(t.contention().count(2), 1u);
    EXPECT_EQ(t.contention().count(3), 2u);
}

TEST(SharingTracker, ContentionIsPerLocation)
{
    SharingTracker t;
    t.beginAttempt(0x40, 0);
    t.beginAttempt(0x80, 1); // other location: contention 1
    EXPECT_EQ(t.contention().count(1), 2u);
    EXPECT_EQ(t.contention().count(2), 0u);
}

TEST(SharingTracker, ClearForgetsEverything)
{
    SharingTracker t;
    t.recordAccess(0x40, 0, true);
    t.beginAttempt(0x40, 0);
    t.clear();
    EXPECT_EQ(t.writeRuns().samples(), 0u);
    EXPECT_EQ(t.contention().samples(), 0u);
}

TEST(SharingTrackerDeath, UnbalancedEndAttemptPanics)
{
    SharingTracker t;
    EXPECT_DEATH(t.endAttempt(0x40, 0), "endAttempt");
}
