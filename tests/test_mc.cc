/**
 * @file
 * Tests of the exhaustive small-config model checker (mc/explorer.hh):
 * every application-matrix implementation explores cleanly on a 2-node
 * configuration, the recovery layer survives a budgeted message loss,
 * and McConfig validation rejects out-of-bounds parameters with
 * descriptive errors.
 */

#include <gtest/gtest.h>

#include <string>

#include "exp/experiment.hh"
#include "mc/explorer.hh"
#include "sim/config.hh"

using namespace dsm;

namespace {

Config
mcConfig(SyncPolicy pol, Primitive prim, int nodes = 2, int ops = 1,
         int loss = 0)
{
    Config cfg;
    cfg.sync.policy = pol;
    cfg.mc.primitive = prim;
    cfg.mc.nodes = nodes;
    cfg.mc.ops_per_proc = ops;
    cfg.mc.loss_budget = loss;
    return cfg;
}

void
expectClean(const Config &cfg, const char *what)
{
    mc::Result res = mc::explore(cfg);
    EXPECT_TRUE(res.completed) << what << ": hit the max_states fuse";
    EXPECT_TRUE(res.violations.empty())
        << what << ": " << res.violations.size() << " violations, first: "
        << (res.violations.empty() ? ""
                                   : res.violations[0].kind + ": " +
                                         res.violations[0].detail);
    EXPECT_GT(res.states, 1u) << what;
    EXPECT_GT(res.terminals, 0u) << what;
}

} // namespace

TEST(McExplore, TwoNodeMatrixIsClean)
{
    for (const ImplCase &impl : applicationMatrix()) {
        SCOPED_TRACE(impl.label);
        expectClean(mcConfig(impl.sync.policy, impl.prim),
                    impl.label.c_str());
    }
}

TEST(McExplore, TwoNodeTwoOpsFap)
{
    expectClean(mcConfig(SyncPolicy::INV, Primitive::FAP, 2, 2),
                "INV FAP 2n2op");
}

TEST(McExplore, ThreeNodeCas)
{
    expectClean(mcConfig(SyncPolicy::INV, Primitive::CAS, 3, 1),
                "INV CAS 3n1op");
}

TEST(McExplore, LossBudgetRecovery)
{
    // One budgeted message loss must be recovered by retransmission in
    // every interleaving, and at least one explored path actually
    // spends the budget.
    for (Primitive prim :
         {Primitive::FAP, Primitive::CAS, Primitive::LLSC}) {
        SCOPED_TRACE(toString(prim));
        Config cfg = mcConfig(SyncPolicy::INV, prim, 2, 1, 1);
        mc::Result res = mc::explore(cfg);
        EXPECT_TRUE(res.completed);
        EXPECT_TRUE(res.violations.empty());
        EXPECT_GT(res.losses, 0u)
            << "loss budget present but no DROP transition ever fired";
    }
}

TEST(McExplore, CombiningBatchesAreClean)
{
    // The serving layer's home-node combining as an explicit COMBINE
    // transition: whenever >= 2 combinable fetch&add requests head the
    // home's channels, one branch serves them as a single batch. Every
    // interleaving of the batch with in-flight coherence traffic (the
    // UPD policy's update fan-out in particular) must still deliver
    // exactly one reply per member, produce the serial history, and
    // pass every coherence invariant — no reply lost or duplicated.
    for (SyncPolicy pol : {SyncPolicy::UNC, SyncPolicy::UPD}) {
        SCOPED_TRACE(toString(pol));
        Config cfg = mcConfig(pol, Primitive::FAP, 2, 2);
        cfg.mc.combining = true;
        mc::Result res = mc::explore(cfg);
        EXPECT_TRUE(res.completed);
        EXPECT_TRUE(res.violations.empty())
            << res.violations.size() << " violations, first: "
            << (res.violations.empty()
                    ? ""
                    : res.violations[0].kind + ": " +
                          res.violations[0].detail);
        EXPECT_GT(res.combines, 0u)
            << "combining armed but no COMBINE transition ever fired";
    }
}

TEST(McExplore, CombiningSurvivesMessageLoss)
{
    // A combined batch member may be a retransmission whose original
    // was dropped (or the original of a duplicate still queued). The
    // per-member dedup in the COMBINE transition must keep the ledger
    // closed: no double-applied fetch&add in any interleaving.
    Config cfg = mcConfig(SyncPolicy::UNC, Primitive::FAP, 2, 1, 1);
    cfg.mc.combining = true;
    mc::Result res = mc::explore(cfg);
    EXPECT_TRUE(res.completed);
    EXPECT_TRUE(res.violations.empty())
        << (res.violations.empty()
                ? ""
                : res.violations[0].kind + ": " +
                      res.violations[0].detail);
    EXPECT_GT(res.losses, 0u);
    EXPECT_GT(res.combines, 0u);
}

TEST(McExplore, FuseReportsIncomplete)
{
    Config cfg = mcConfig(SyncPolicy::UPD, Primitive::LLSC, 3, 1);
    cfg.mc.max_states = 100; // far below the ~18k reachable states
    mc::Result res = mc::explore(cfg);
    EXPECT_FALSE(res.completed);
    EXPECT_FALSE(res.ok());
    EXPECT_LE(res.states, 100u + 1);
}

TEST(McConfig, ValidationRejectsOutOfBounds)
{
    struct BadCase
    {
        const char *what;
        void (*mutate)(Config &);
        const char *substr;
    };
    const BadCase cases[] = {
        { "nodes too big", [](Config &c) { c.mc.nodes = 4; },
          "mc.nodes" },
        { "nodes too small", [](Config &c) { c.mc.nodes = 1; },
          "mc.nodes" },
        { "multi-line", [](Config &c) { c.mc.lines = 2; },
          "mc.lines" },
        { "zero ops", [](Config &c) { c.mc.ops_per_proc = 0; },
          "mc.ops_per_proc" },
        { "too many ops", [](Config &c) { c.mc.ops_per_proc = 5; },
          "mc.ops_per_proc" },
        { "loss budget 2", [](Config &c) { c.mc.loss_budget = 2; },
          "mc.loss_budget" },
        { "zero fuse", [](Config &c) { c.mc.max_states = 0; },
          "mc.max_states" },
        { "combining non-FAP",
          [](Config &c) {
              c.mc.combining = true;
              c.mc.primitive = Primitive::CAS;
          },
          "mc.combining" },
    };
    for (const BadCase &bc : cases) {
        SCOPED_TRACE(bc.what);
        Config cfg;
        bc.mutate(cfg);
        std::string err = cfg.validate();
        EXPECT_FALSE(err.empty());
        EXPECT_NE(err.find(bc.substr), std::string::npos)
            << "error text \"" << err << "\" does not name "
            << bc.substr;
    }
}

TEST(McConfig, DefaultsValidate)
{
    Config cfg;
    EXPECT_EQ(cfg.validate(), "");
}
