/**
 * @file
 * Minimal recursive-descent JSON parser for validating the JSON the
 * simulator emits (registry dumps, bench reports, Chrome traces).
 * Test-only: favors clear failure reporting over speed; numbers are
 * held as doubles, which is exact for every counter the tests check.
 */

#ifndef DSM_TESTS_JSON_PARSE_HH
#define DSM_TESTS_JSON_PARSE_HH

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace dsmtest {

struct JsonValue
{
    enum class Kind { NUL, BOOL, NUMBER, STRING, ARRAY, OBJECT };

    Kind kind = Kind::NUL;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isObject() const { return kind == Kind::OBJECT; }
    bool isArray() const { return kind == Kind::ARRAY; }
    bool isNumber() const { return kind == Kind::NUMBER; }
    bool isString() const { return kind == Kind::STRING; }

    /** Object member lookup; nullptr if absent or not an object. */
    const JsonValue *
    find(const std::string &key) const
    {
        if (kind != Kind::OBJECT)
            return nullptr;
        for (const auto &[k, v] : object)
            if (k == key)
                return &v;
        return nullptr;
    }

    bool has(const std::string &key) const { return find(key) != nullptr; }

    /** Member's numeric value, or @p fallback if absent/non-numeric. */
    double
    num(const std::string &key, double fallback = -1.0) const
    {
        const JsonValue *v = find(key);
        return v != nullptr && v->kind == Kind::NUMBER ? v->number
                                                       : fallback;
    }

    /** Member's string value, or "" if absent/non-string. */
    std::string
    str(const std::string &key) const
    {
        const JsonValue *v = find(key);
        return v != nullptr && v->kind == Kind::STRING ? v->string : "";
    }
};

class JsonParser
{
  public:
    /**
     * Parse @p text into @p out. On failure returns false and leaves a
     * human-readable message (with byte offset) in @p err.
     */
    static bool
    parse(const std::string &text, JsonValue *out, std::string *err)
    {
        JsonParser p(text);
        bool ok = p.parseValue(out) &&
                  (p.skipWs(), p._pos == text.size());
        if (!ok && err != nullptr) {
            *err = p._err.empty() ? "trailing characters" : p._err;
            *err += " at offset " + std::to_string(p._pos);
        }
        return ok;
    }

  private:
    explicit JsonParser(const std::string &text) : _text(text) {}

    const std::string &_text;
    std::size_t _pos = 0;
    std::string _err;

    bool
    fail(const std::string &what)
    {
        if (_err.empty())
            _err = what;
        return false;
    }

    void
    skipWs()
    {
        while (_pos < _text.size() &&
               std::isspace(static_cast<unsigned char>(_text[_pos])))
            ++_pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (_pos >= _text.size() || _text[_pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++_pos;
        return true;
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (_text.compare(_pos, len, word) != 0)
            return fail(std::string("bad literal, wanted ") + word);
        _pos += len;
        return true;
    }

    bool
    parseString(std::string *out)
    {
        if (!consume('"'))
            return false;
        out->clear();
        while (_pos < _text.size()) {
            char c = _text[_pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (_pos >= _text.size())
                    break;
                char e = _text[_pos++];
                switch (e) {
                  case '"': out->push_back('"'); break;
                  case '\\': out->push_back('\\'); break;
                  case '/': out->push_back('/'); break;
                  case 'b': out->push_back('\b'); break;
                  case 'f': out->push_back('\f'); break;
                  case 'n': out->push_back('\n'); break;
                  case 'r': out->push_back('\r'); break;
                  case 't': out->push_back('\t'); break;
                  case 'u': {
                    if (_pos + 4 > _text.size())
                        return fail("truncated \\u escape");
                    // The emitters only escape control characters, so a
                    // raw byte is a faithful enough decoding for tests.
                    unsigned long cp = std::strtoul(
                        _text.substr(_pos, 4).c_str(), nullptr, 16);
                    out->push_back(static_cast<char>(cp & 0xff));
                    _pos += 4;
                    break;
                  }
                  default:
                    return fail("bad escape");
                }
            } else {
                out->push_back(c);
            }
        }
        return fail("unterminated string");
    }

    bool
    parseValue(JsonValue *out)
    {
        skipWs();
        if (_pos >= _text.size())
            return fail("unexpected end of input");
        char c = _text[_pos];
        switch (c) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out->kind = JsonValue::Kind::STRING;
            return parseString(&out->string);
          case 't':
            out->kind = JsonValue::Kind::BOOL;
            out->boolean = true;
            return literal("true", 4);
          case 'f':
            out->kind = JsonValue::Kind::BOOL;
            out->boolean = false;
            return literal("false", 5);
          case 'n':
            out->kind = JsonValue::Kind::NUL;
            return literal("null", 4);
          default:
            return parseNumber(out);
        }
    }

    bool
    parseNumber(JsonValue *out)
    {
        const char *start = _text.c_str() + _pos;
        char *end = nullptr;
        double v = std::strtod(start, &end);
        if (end == start)
            return fail("expected a value");
        out->kind = JsonValue::Kind::NUMBER;
        out->number = v;
        _pos += static_cast<std::size_t>(end - start);
        return true;
    }

    bool
    parseArray(JsonValue *out)
    {
        if (!consume('['))
            return false;
        out->kind = JsonValue::Kind::ARRAY;
        skipWs();
        if (_pos < _text.size() && _text[_pos] == ']') {
            ++_pos;
            return true;
        }
        while (true) {
            JsonValue elem;
            if (!parseValue(&elem))
                return false;
            out->array.push_back(std::move(elem));
            skipWs();
            if (_pos >= _text.size())
                return fail("unterminated array");
            if (_text[_pos] == ',') {
                ++_pos;
                continue;
            }
            return consume(']');
        }
    }

    bool
    parseObject(JsonValue *out)
    {
        if (!consume('{'))
            return false;
        out->kind = JsonValue::Kind::OBJECT;
        skipWs();
        if (_pos < _text.size() && _text[_pos] == '}') {
            ++_pos;
            return true;
        }
        while (true) {
            std::string key;
            skipWs();
            if (!parseString(&key) || !consume(':'))
                return false;
            JsonValue val;
            if (!parseValue(&val))
                return false;
            out->object.emplace_back(std::move(key), std::move(val));
            skipWs();
            if (_pos >= _text.size())
                return fail("unterminated object");
            if (_text[_pos] == ',') {
                ++_pos;
                continue;
            }
            return consume('}');
        }
    }
};

/** Parse or ADD_FAILURE with the parser's diagnostic. */
inline bool
parseJsonOrFail(const std::string &text, JsonValue *out)
{
    std::string err;
    bool ok = JsonParser::parse(text, out, &err);
    EXPECT_TRUE(ok) << "JSON parse error: " << err << "\ninput:\n"
                    << text.substr(0, 2000);
    return ok;
}

} // namespace dsmtest

#endif // DSM_TESTS_JSON_PARSE_HH
