/** @file Unit tests for small support classes. */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "sync/backoff.hh"

using namespace dsmtest;

TEST(Backoff, DelaysStayWithinDoublingBounds)
{
    Rng rng(3);
    Backoff b(16, 256);
    Tick bound = 16;
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(b.currentBound(), bound);
        Tick d = b.next(rng);
        EXPECT_GE(d, 1u);
        EXPECT_LE(d, bound);
        bound = bound * 2 > 256 ? 256 : bound * 2;
    }
    EXPECT_EQ(b.currentBound(), 256u); // capped
}

TEST(Backoff, ResetReturnsToBase)
{
    Rng rng(5);
    Backoff b(8, 1024);
    for (int i = 0; i < 5; ++i)
        b.next(rng);
    EXPECT_GT(b.currentBound(), 8u);
    b.reset();
    EXPECT_EQ(b.currentBound(), 8u);
}

TEST(LatencyStat, AccumulatesMeanAndMax)
{
    LatencyStat s;
    EXPECT_EQ(s.mean(), 0.0);
    s.sample(10);
    s.sample(20);
    s.sample(60);
    EXPECT_EQ(s.count, 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 30.0);
    EXPECT_EQ(s.max, 60u);
}

TEST(MeshStats, ClearStatsResets)
{
    System sys(smallConfig());
    Addr a = sys.allocAt(3, 8);
    runOp(sys, 0, AtomicOp::STORE, a, 1);
    EXPECT_GT(sys.mesh().stats().messages, 0u);
    sys.mesh().clearStats();
    EXPECT_EQ(sys.mesh().stats().messages, 0u);
    EXPECT_EQ(sys.mesh().stats().flits, 0u);
}

TEST(ProcStats, OpsIssuedCounts)
{
    System sys(smallConfig());
    Addr a = sys.alloc(8);
    auto before = sys.proc(0).opsIssued();
    runOp(sys, 0, AtomicOp::STORE, a, 1);
    runOp(sys, 0, AtomicOp::LOAD, a);
    EXPECT_EQ(sys.proc(0).opsIssued(), before + 2);
}

TEST(SysStats, ChainHistogramTracksPerOp)
{
    System sys(smallConfig(SyncPolicy::UNC));
    Addr a = sys.allocSyncAt(3);
    clearStats(sys);
    runOp(sys, 0, AtomicOp::FAA, a, 1); // 2 network messages
    runOp(sys, 3, AtomicOp::FAA, a, 1); // home-local: chain 0
    EXPECT_EQ(sys.stats().chain_length.samples(), 2u);
    EXPECT_EQ(sys.stats().chain_length.count(2), 1u);
    EXPECT_EQ(sys.stats().chain_length.count(0), 1u);
}

TEST(CacheStats, HitMissAccounting)
{
    System sys(smallConfig());
    Addr a = sys.alloc(8);
    runOp(sys, 0, AtomicOp::LOAD, a); // miss
    runOp(sys, 0, AtomicOp::LOAD, a); // hit
    runOp(sys, 0, AtomicOp::LOAD, a); // hit
    const CacheStats &cs = sys.ctrl(0).cache().stats();
    EXPECT_EQ(cs.misses, 1u);
    EXPECT_EQ(cs.hits, 2u);
}
