/** @file Unit tests for the discrete-event queue. */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"

using namespace dsm;

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.schedule(2, [&] {
            ++fired;
            eq.scheduleIn(3, [&] { ++fired; });
        });
    });
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(7, [&] { eq.scheduleIn(5, [&] { seen = eq.now(); }); });
    eq.run();
    EXPECT_EQ(seen, 12u);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(21, [&] { ++fired; });
    eq.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 20u);
    eq.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle)
{
    EventQueue eq;
    eq.runUntil(100);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, RunHonoursEventLimit)
{
    EventQueue eq;
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        eq.schedule(static_cast<Tick>(i), [&] { ++fired; });
    EXPECT_EQ(eq.run(4), 4u);
    EXPECT_EQ(fired, 4);
    EXPECT_EQ(eq.pending(), 6u);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(1, [] {});
    eq.run();
    EXPECT_EQ(eq.eventsExecuted(), 5u);
}

TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "scheduling into the past");
}

// The pooled intrusive-event queue must preserve the exact (tick, FIFO
// within a tick) execution order of the original heap-of-std::function
// design. This drives a pseudo-random schedule and checks it against a
// stable-sort reference model.
TEST(EventQueuePool, MatchesReferenceOrderUnderRandomSchedule)
{
    struct Ref
    {
        Tick when;
        int id;
    };
    EventQueue eq;
    std::vector<Ref> ref;
    std::vector<int> fired;
    std::uint64_t lcg = 12345;
    for (int i = 0; i < 2000; ++i) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        Tick when = (lcg >> 33) % 97;
        ref.push_back({when, i});
        eq.schedule(when, [&fired, i] { fired.push_back(i); });
    }
    std::stable_sort(ref.begin(), ref.end(),
                     [](const Ref &a, const Ref &b) {
                         return a.when < b.when;
                     });
    eq.run();
    ASSERT_EQ(fired.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_EQ(fired[i], ref[i].id) << "at position " << i;
}

// Free-list reuse: events scheduled from inside callbacks reuse pooled
// storage across many waves without disturbing ordering.
TEST(EventQueuePool, ReentrantSchedulingReusesEventsSafely)
{
    EventQueue eq;
    int waves = 0;
    std::vector<int> order;
    std::function<void()> wave = [&] {
        if (++waves > 200)
            return;
        // Schedule several same-tick events plus the next wave; the
        // same-tick events must fire in FIFO order every wave.
        for (int i = 0; i < 8; ++i)
            eq.scheduleIn(1, [&order, i] { order.push_back(i); });
        eq.scheduleIn(2, [&] { wave(); });
    };
    eq.schedule(0, [&] { wave(); });
    eq.run();
    EXPECT_EQ(waves, 201);
    ASSERT_EQ(order.size(), 200u * 8u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], static_cast<int>(i % 8));
}

// Callbacks larger than the inline small-buffer store must fall back to
// the heap and still run correctly in order.
TEST(EventQueuePool, LargeCallbacksFallBackToHeap)
{
    EventQueue eq;
    struct Big
    {
        char payload[512];
    };
    Big big{};
    big.payload[0] = 42;
    big.payload[511] = 7;
    std::vector<int> seen;
    eq.schedule(2, [big, &seen] {
        seen.push_back(big.payload[0] + big.payload[511]);
    });
    eq.schedule(1, [big, &seen] {
        seen.push_back(big.payload[511]);
    });
    eq.run();
    EXPECT_EQ(seen, (std::vector<int>{7, 49}));
}

// Pending events that never fire (queue destroyed first) must not leak
// their callbacks; exercised under ASan/valgrind builds, and here it at
// least must not crash.
TEST(EventQueuePool, DestroysPendingCallbacks)
{
    auto guard = std::make_shared<int>(5);
    std::weak_ptr<int> watch = guard;
    {
        EventQueue eq;
        eq.schedule(1, [guard] { (void)*guard; });
        guard.reset();
        EXPECT_FALSE(watch.expired());
    }
    EXPECT_TRUE(watch.expired());
}
