/** @file Unit tests for the discrete-event queue. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace dsm;

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.schedule(2, [&] {
            ++fired;
            eq.scheduleIn(3, [&] { ++fired; });
        });
    });
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(7, [&] { eq.scheduleIn(5, [&] { seen = eq.now(); }); });
    eq.run();
    EXPECT_EQ(seen, 12u);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(21, [&] { ++fired; });
    eq.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 20u);
    eq.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle)
{
    EventQueue eq;
    eq.runUntil(100);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, RunHonoursEventLimit)
{
    EventQueue eq;
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        eq.schedule(static_cast<Tick>(i), [&] { ++fired; });
    EXPECT_EQ(eq.run(4), 4u);
    EXPECT_EQ(fired, 4);
    EXPECT_EQ(eq.pending(), 6u);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(1, [] {});
    eq.run();
    EXPECT_EQ(eq.eventsExecuted(), 5u);
}

TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "scheduling into the past");
}
