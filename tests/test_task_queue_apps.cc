/** @file Tests of the LocusRoute/Cholesky stand-in workloads. */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "workloads/task_queue_apps.hh"

using namespace dsmtest;

namespace {

TaskQueueConfig
quickConfig(Primitive prim)
{
    TaskQueueConfig cfg;
    cfg.prim = prim;
    cfg.num_tasks = 48;
    cfg.work_min = 400;
    cfg.work_max = 1200;
    return cfg;
}

} // namespace

class TaskQueuePrimPolicy
    : public testing::TestWithParam<std::tuple<Primitive, SyncPolicy>>
{
};

TEST_P(TaskQueuePrimPolicy, LocusLikeRunsEveryTaskOnce)
{
    auto [prim, pol] = GetParam();
    System sys(smallConfig(pol, 8));
    TaskQueueResult r = runLocusLike(sys, quickConfig(prim));
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.correct);
    EXPECT_EQ(r.tasks_run, 48u);
    EXPECT_GT(r.elapsed, 0u);
}

TEST_P(TaskQueuePrimPolicy, CholeskyLikeRunsEveryTaskOnce)
{
    auto [prim, pol] = GetParam();
    System sys(smallConfig(pol, 8));
    TaskQueueResult r = runCholeskyLike(sys, quickConfig(prim));
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.correct);
    EXPECT_EQ(r.tasks_run, 48u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, TaskQueuePrimPolicy,
    testing::Combine(testing::Values(Primitive::FAP, Primitive::CAS,
                                     Primitive::LLSC),
                     testing::Values(SyncPolicy::INV, SyncPolicy::UPD,
                                     SyncPolicy::UNC)),
    [](const auto &info) {
        return std::string(toString(std::get<0>(info.param))) + "_" +
               toString(std::get<1>(info.param));
    });

TEST(TaskQueueApps, LockWriteRunsAreNearTwo)
{
    // Section 4.2: "a processor usually acquires and releases a lock
    // without intervening accesses by other processors, but it is
    // unlikely to re-acquire it without intervention" -- write runs
    // between 1 and about 2.
    System sys(smallConfig(SyncPolicy::INV, 16));
    TaskQueueConfig cfg = quickConfig(Primitive::FAP);
    cfg.num_tasks = 128;
    cfg.work_min = 20000;
    cfg.work_max = 50000;
    TaskQueueResult r = runLocusLike(sys, cfg);
    ASSERT_TRUE(r.correct);
    EXPECT_GT(r.avg_write_run, 1.4);
    EXPECT_LE(r.avg_write_run, 2.05);
}

TEST(TaskQueueApps, NoContentionDominatesWithAmpleWork)
{
    System sys(smallConfig(SyncPolicy::INV, 16));
    TaskQueueConfig cfg = quickConfig(Primitive::FAP);
    cfg.num_tasks = 96;
    cfg.work_min = 20000;
    cfg.work_max = 50000;
    TaskQueueResult r = runLocusLike(sys, cfg);
    ASSERT_TRUE(r.correct);
    EXPECT_GT(r.pct_no_contention, 50.0);
}

TEST(TaskQueueApps, CholeskySpreadsLoadAcrossColumnLocks)
{
    System sys(smallConfig(SyncPolicy::INV, 8));
    TaskQueueConfig cfg = quickConfig(Primitive::CAS);
    cfg.num_locks = 6;
    TaskQueueResult r = runCholeskyLike(sys, cfg);
    EXPECT_TRUE(r.correct);
}
