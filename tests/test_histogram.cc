/** @file Unit tests for the histogram. */

#include <gtest/gtest.h>

#include "stats/histogram.hh"

using namespace dsm;

TEST(Histogram, EmptyDefaults)
{
    Histogram h;
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.fraction(3), 0.0);
}

TEST(Histogram, MeanAndMax)
{
    Histogram h;
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(10);
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
    EXPECT_EQ(h.max(), 10u);
}

TEST(Histogram, WeightedAdd)
{
    Histogram h;
    h.add(2, 5);
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_EQ(h.count(2), 5u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Histogram, Fractions)
{
    Histogram h;
    h.add(1, 3);
    h.add(2, 1);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.75);
    EXPECT_DOUBLE_EQ(h.fraction(2), 0.25);
    EXPECT_DOUBLE_EQ(h.fraction(9), 0.0);
}

TEST(Histogram, Percentiles)
{
    Histogram h;
    for (int v = 1; v <= 100; ++v)
        h.add(static_cast<std::uint64_t>(v));
    EXPECT_EQ(h.percentile(0.5), 50u);
    EXPECT_EQ(h.percentile(0.99), 99u);
    EXPECT_EQ(h.percentile(1.0), 100u);
}

TEST(Histogram, NearestRankSingleSample)
{
    // Nearest-rank: any nonzero quantile of one sample is that sample.
    Histogram h;
    h.add(5);
    EXPECT_EQ(h.percentile(0.01), 5u);
    EXPECT_EQ(h.percentile(0.5), 5u);
    EXPECT_EQ(h.percentile(1.0), 5u);
}

TEST(Histogram, NearestRankTwoSamples)
{
    // rank = ceil(q * n): q=0.5 of two samples is the first, anything
    // above lands on the second.
    Histogram h;
    h.add(1);
    h.add(100);
    EXPECT_EQ(h.percentile(0.5), 1u);
    EXPECT_EQ(h.percentile(0.75), 100u);
    EXPECT_EQ(h.percentile(0.95), 100u);
    EXPECT_EQ(h.percentile(1.0), 100u);
}

TEST(Histogram, PercentileOneIsMax)
{
    Histogram h;
    h.add(3);
    h.add(7);
    h.add(9);
    EXPECT_EQ(h.percentile(1.0), h.max());
}

TEST(Histogram, ClearResets)
{
    Histogram h;
    h.add(7);
    h.clear();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.count(7), 0u);
    EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, SummaryMentionsCountAndMean)
{
    Histogram h;
    h.add(4);
    std::string s = h.summary();
    EXPECT_NE(s.find("n=1"), std::string::npos);
    EXPECT_NE(s.find("mean=4.00"), std::string::npos);
}
