/** @file Unit tests for configuration validation and labels. */

#include <gtest/gtest.h>

#include "sim/config.hh"

using namespace dsm;

TEST(Config, EnumNames)
{
    EXPECT_STREQ(toString(SyncPolicy::INV), "INV");
    EXPECT_STREQ(toString(SyncPolicy::UPD), "UPD");
    EXPECT_STREQ(toString(SyncPolicy::UNC), "UNC");
    EXPECT_STREQ(toString(CasVariant::PLAIN), "INV");
    EXPECT_STREQ(toString(CasVariant::DENY), "INVd");
    EXPECT_STREQ(toString(CasVariant::SHARE), "INVs");
    EXPECT_STREQ(toString(Primitive::FAP), "FAP");
    EXPECT_STREQ(toString(Primitive::LLSC), "LLSC");
    EXPECT_STREQ(toString(Primitive::CAS), "CAS");
}

TEST(Config, SyncLabelComposition)
{
    SyncConfig sc;
    EXPECT_EQ(sc.label(), "INV");
    sc.cas_variant = CasVariant::DENY;
    EXPECT_EQ(sc.label(), "INVd");
    sc.cas_variant = CasVariant::PLAIN;
    sc.use_load_exclusive = true;
    EXPECT_EQ(sc.label(), "INV+lx");
    sc.use_drop_copy = true;
    EXPECT_EQ(sc.label(), "INV+lx+dc");
    sc.policy = SyncPolicy::UNC;
    sc.use_load_exclusive = false;
    sc.use_drop_copy = false;
    EXPECT_EQ(sc.label(), "UNC");
}

TEST(Config, DefaultMachineValidates)
{
    MachineConfig mc;
    mc.validate(); // must not exit
    SUCCEED();
}

TEST(ConfigDeath, BadMeshIsFatal)
{
    MachineConfig mc;
    mc.num_procs = 16;
    mc.mesh_x = 3;
    mc.mesh_y = 4;
    EXPECT_EXIT(mc.validate(), testing::ExitedWithCode(1),
                "does not cover");
}

TEST(ConfigDeath, TooManyProcsIsFatal)
{
    MachineConfig mc;
    mc.num_procs = 65;
    mc.mesh_x = 65;
    mc.mesh_y = 1;
    EXPECT_EXIT(mc.validate(), testing::ExitedWithCode(1), "num_procs");
}

TEST(ConfigDeath, NonPowerOfTwoSetsIsFatal)
{
    MachineConfig mc;
    mc.cache_sets = 48;
    EXPECT_EXIT(mc.validate(), testing::ExitedWithCode(1), "cache_sets");
}

// Config::validate() returns one descriptive message per defect instead
// of exiting, so callers (System's constructor, tests, tools) can
// surface it however they like.

TEST(ConfigValidate, DefaultConfigIsValid)
{
    Config cfg;
    EXPECT_EQ(cfg.validate(), "");
}

TEST(ConfigValidate, ReportsProcRange)
{
    Config cfg;
    cfg.machine.num_procs = 65;
    cfg.machine.mesh_x = 65;
    cfg.machine.mesh_y = 1;
    EXPECT_EQ(cfg.validate(), "num_procs must be in [1, 64], got 65");
    cfg.machine.num_procs = 0;
    cfg.machine.mesh_x = 0;
    EXPECT_EQ(cfg.validate(), "num_procs must be in [1, 64], got 0");
}

TEST(ConfigValidate, ReportsMeshMismatch)
{
    Config cfg;
    cfg.machine.num_procs = 16;
    cfg.machine.mesh_x = 3;
    cfg.machine.mesh_y = 4;
    EXPECT_EQ(cfg.validate(), "mesh 3x4 does not cover 16 procs");
}

TEST(ConfigValidate, ReportsBadCacheGeometry)
{
    Config cfg;
    cfg.machine.cache_sets = 48;
    EXPECT_EQ(cfg.validate(),
              "cache_sets must be a nonzero power of two, got 48");
    cfg.machine.cache_sets = 64;
    cfg.machine.cache_ways = 0;
    EXPECT_EQ(cfg.validate(), "cache_ways must be nonzero");
}

TEST(ConfigValidate, ReportsZeroLatencies)
{
    Config cfg;
    cfg.machine.mem_service_time = 0;
    EXPECT_EQ(cfg.validate(), "mem_service_time must be nonzero");
    cfg.machine.mem_service_time = 20;
    cfg.machine.flit_latency = 0;
    EXPECT_EQ(cfg.validate(), "flit_latency must be nonzero");
    cfg.machine.flit_latency = 1;
    cfg.machine.retry_delay = 0;
    EXPECT_EQ(cfg.validate(), "retry_delay must be nonzero");
}

TEST(ConfigValidate, ZeroHopLatencyIsAllowed)
{
    // hop_latency == 0 models contention-free routing and is exercised
    // by the timing-parameter sweeps; it must stay valid.
    Config cfg;
    cfg.machine.hop_latency = 0;
    EXPECT_EQ(cfg.validate(), "");
}

TEST(ConfigValidate, ReportsReservationAndTraceDefects)
{
    Config cfg;
    cfg.machine.max_memory_reservations = -1;
    EXPECT_EQ(cfg.validate(),
              "max_memory_reservations must be >= 0, got -1");
    cfg.machine.max_memory_reservations = 0;
    cfg.trace.enabled = true;
    cfg.trace.capacity = 0;
    EXPECT_EQ(cfg.validate(),
              "trace.capacity must be nonzero when tracing is enabled");
}

TEST(ConfigValidate, ReportsFaultProbabilityRange)
{
    Config cfg;
    cfg.faults.msg_jitter_prob = -0.1;
    EXPECT_EQ(cfg.validate(),
              "faults.msg_jitter_prob must be in [0, 1], got -0.1");
    cfg.faults.msg_jitter_prob = 0.0;
    cfg.faults.resv_drop_prob = 2.0;
    EXPECT_EQ(cfg.validate(),
              "faults.resv_drop_prob must be in [0, 1], got 2");
    cfg.faults.resv_drop_prob = 0.0;
    cfg.faults.evict_prob = 1.5;
    EXPECT_EQ(cfg.validate(),
              "faults.evict_prob must be in [0, 1], got 1.5");
    cfg.faults.evict_prob = 0.0;
    cfg.faults.nack_prob = 1.01;
    EXPECT_EQ(cfg.validate(),
              "faults.nack_prob must be in [0, 1], got 1.01");
}

TEST(ConfigValidate, ReportsJitterBoundDefects)
{
    Config cfg;
    cfg.faults.enabled = true;
    cfg.faults.msg_jitter_prob = 0.5;
    cfg.faults.msg_jitter_max = 0;
    EXPECT_EQ(cfg.validate(),
              "faults.msg_jitter_max must be nonzero when "
              "faults.msg_jitter_prob > 0");
    cfg.faults.msg_jitter_max = FAULT_JITTER_HORIZON + 1;
    EXPECT_EQ(cfg.validate(),
              "faults.msg_jitter_max must be <= 1048576 (the "
              "event-queue jitter horizon), got 1048577");
    cfg.faults.msg_jitter_max = 64;
    EXPECT_EQ(cfg.validate(), "");
}

TEST(ConfigValidate, ReportsNackCapDefect)
{
    Config cfg;
    cfg.faults.max_extra_nacks = -3;
    EXPECT_EQ(cfg.validate(),
              "faults.max_extra_nacks must be >= 0, got -3");
}

TEST(ConfigValidate, ReportsWatchdogDefects)
{
    Config cfg;
    cfg.watchdog.enabled = true;
    cfg.watchdog.max_retries = -1;
    EXPECT_EQ(cfg.validate(),
              "watchdog.max_retries must be >= 0, got -1");
    cfg.watchdog.max_retries = 0;
    cfg.watchdog.max_txn_age = 0;
    EXPECT_EQ(cfg.validate(),
              "watchdog enabled but both max_retries and max_txn_age "
              "are 0; set at least one bound");
    cfg.watchdog.max_txn_age = 1000;
    cfg.watchdog.scan_period = 0;
    EXPECT_EQ(cfg.validate(),
              "watchdog.scan_period must be nonzero when max_txn_age "
              "is set");
    cfg.watchdog.scan_period = 100;
    EXPECT_EQ(cfg.validate(), "");
}

TEST(ConfigValidate, DisabledFaultKnobsStillRangeChecked)
{
    // Probability ranges are checked even with injection disabled so a
    // typo in a sweep config fails fast rather than silently when the
    // campaign later flips `enabled` on.
    Config cfg;
    ASSERT_FALSE(cfg.faults.enabled);
    cfg.faults.nack_prob = 7.0;
    EXPECT_EQ(cfg.validate(),
              "faults.nack_prob must be in [0, 1], got 7");
}
