/** @file Unit tests for configuration validation and labels. */

#include <gtest/gtest.h>

#include "sim/config.hh"

using namespace dsm;

TEST(Config, EnumNames)
{
    EXPECT_STREQ(toString(SyncPolicy::INV), "INV");
    EXPECT_STREQ(toString(SyncPolicy::UPD), "UPD");
    EXPECT_STREQ(toString(SyncPolicy::UNC), "UNC");
    EXPECT_STREQ(toString(CasVariant::PLAIN), "INV");
    EXPECT_STREQ(toString(CasVariant::DENY), "INVd");
    EXPECT_STREQ(toString(CasVariant::SHARE), "INVs");
    EXPECT_STREQ(toString(Primitive::FAP), "FAP");
    EXPECT_STREQ(toString(Primitive::LLSC), "LLSC");
    EXPECT_STREQ(toString(Primitive::CAS), "CAS");
}

TEST(Config, SyncLabelComposition)
{
    SyncConfig sc;
    EXPECT_EQ(sc.label(), "INV");
    sc.cas_variant = CasVariant::DENY;
    EXPECT_EQ(sc.label(), "INVd");
    sc.cas_variant = CasVariant::PLAIN;
    sc.use_load_exclusive = true;
    EXPECT_EQ(sc.label(), "INV+lx");
    sc.use_drop_copy = true;
    EXPECT_EQ(sc.label(), "INV+lx+dc");
    sc.policy = SyncPolicy::UNC;
    sc.use_load_exclusive = false;
    sc.use_drop_copy = false;
    EXPECT_EQ(sc.label(), "UNC");
}

TEST(Config, DefaultMachineValidates)
{
    MachineConfig mc;
    mc.validate(); // must not exit
    SUCCEED();
}

TEST(ConfigDeath, BadMeshIsFatal)
{
    MachineConfig mc;
    mc.num_procs = 16;
    mc.mesh_x = 3;
    mc.mesh_y = 4;
    EXPECT_EXIT(mc.validate(), testing::ExitedWithCode(1),
                "does not cover");
}

TEST(ConfigDeath, TooManyProcsIsFatal)
{
    MachineConfig mc;
    mc.num_procs = 65;
    mc.mesh_x = 65;
    mc.mesh_y = 1;
    EXPECT_EXIT(mc.validate(), testing::ExitedWithCode(1), "num_procs");
}

TEST(ConfigDeath, NonPowerOfTwoSetsIsFatal)
{
    MachineConfig mc;
    mc.cache_sets = 48;
    EXPECT_EXIT(mc.validate(), testing::ExitedWithCode(1), "cache_sets");
}
