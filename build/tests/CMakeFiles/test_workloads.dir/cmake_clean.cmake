file(REMOVE_RECURSE
  "CMakeFiles/test_workloads.dir/test_counter_apps.cc.o"
  "CMakeFiles/test_workloads.dir/test_counter_apps.cc.o.d"
  "CMakeFiles/test_workloads.dir/test_task_queue_apps.cc.o"
  "CMakeFiles/test_workloads.dir/test_task_queue_apps.cc.o.d"
  "CMakeFiles/test_workloads.dir/test_transitive_closure.cc.o"
  "CMakeFiles/test_workloads.dir/test_transitive_closure.cc.o.d"
  "test_workloads"
  "test_workloads.pdb"
  "test_workloads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
