
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_central_barrier.cc" "tests/CMakeFiles/test_sync.dir/test_central_barrier.cc.o" "gcc" "tests/CMakeFiles/test_sync.dir/test_central_barrier.cc.o.d"
  "/root/repo/tests/test_clh_lock.cc" "tests/CMakeFiles/test_sync.dir/test_clh_lock.cc.o" "gcc" "tests/CMakeFiles/test_sync.dir/test_clh_lock.cc.o.d"
  "/root/repo/tests/test_counter.cc" "tests/CMakeFiles/test_sync.dir/test_counter.cc.o" "gcc" "tests/CMakeFiles/test_sync.dir/test_counter.cc.o.d"
  "/root/repo/tests/test_locks.cc" "tests/CMakeFiles/test_sync.dir/test_locks.cc.o" "gcc" "tests/CMakeFiles/test_sync.dir/test_locks.cc.o.d"
  "/root/repo/tests/test_ms_queue.cc" "tests/CMakeFiles/test_sync.dir/test_ms_queue.cc.o" "gcc" "tests/CMakeFiles/test_sync.dir/test_ms_queue.cc.o.d"
  "/root/repo/tests/test_priority_lock.cc" "tests/CMakeFiles/test_sync.dir/test_priority_lock.cc.o" "gcc" "tests/CMakeFiles/test_sync.dir/test_priority_lock.cc.o.d"
  "/root/repo/tests/test_rw_lock.cc" "tests/CMakeFiles/test_sync.dir/test_rw_lock.cc.o" "gcc" "tests/CMakeFiles/test_sync.dir/test_rw_lock.cc.o.d"
  "/root/repo/tests/test_tree_barrier.cc" "tests/CMakeFiles/test_sync.dir/test_tree_barrier.cc.o" "gcc" "tests/CMakeFiles/test_sync.dir/test_tree_barrier.cc.o.d"
  "/root/repo/tests/test_treiber_stack.cc" "tests/CMakeFiles/test_sync.dir/test_treiber_stack.cc.o" "gcc" "tests/CMakeFiles/test_sync.dir/test_treiber_stack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dsm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
