file(REMOVE_RECURSE
  "CMakeFiles/test_sync.dir/test_central_barrier.cc.o"
  "CMakeFiles/test_sync.dir/test_central_barrier.cc.o.d"
  "CMakeFiles/test_sync.dir/test_clh_lock.cc.o"
  "CMakeFiles/test_sync.dir/test_clh_lock.cc.o.d"
  "CMakeFiles/test_sync.dir/test_counter.cc.o"
  "CMakeFiles/test_sync.dir/test_counter.cc.o.d"
  "CMakeFiles/test_sync.dir/test_locks.cc.o"
  "CMakeFiles/test_sync.dir/test_locks.cc.o.d"
  "CMakeFiles/test_sync.dir/test_ms_queue.cc.o"
  "CMakeFiles/test_sync.dir/test_ms_queue.cc.o.d"
  "CMakeFiles/test_sync.dir/test_priority_lock.cc.o"
  "CMakeFiles/test_sync.dir/test_priority_lock.cc.o.d"
  "CMakeFiles/test_sync.dir/test_rw_lock.cc.o"
  "CMakeFiles/test_sync.dir/test_rw_lock.cc.o.d"
  "CMakeFiles/test_sync.dir/test_tree_barrier.cc.o"
  "CMakeFiles/test_sync.dir/test_tree_barrier.cc.o.d"
  "CMakeFiles/test_sync.dir/test_treiber_stack.cc.o"
  "CMakeFiles/test_sync.dir/test_treiber_stack.cc.o.d"
  "test_sync"
  "test_sync.pdb"
  "test_sync[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
