file(REMOVE_RECURSE
  "CMakeFiles/test_protocol.dir/test_param_sweeps.cc.o"
  "CMakeFiles/test_protocol.dir/test_param_sweeps.cc.o.d"
  "CMakeFiles/test_protocol.dir/test_protocol_atomics.cc.o"
  "CMakeFiles/test_protocol.dir/test_protocol_atomics.cc.o.d"
  "CMakeFiles/test_protocol.dir/test_protocol_basic.cc.o"
  "CMakeFiles/test_protocol.dir/test_protocol_basic.cc.o.d"
  "CMakeFiles/test_protocol.dir/test_protocol_llsc.cc.o"
  "CMakeFiles/test_protocol.dir/test_protocol_llsc.cc.o.d"
  "CMakeFiles/test_protocol.dir/test_protocol_races.cc.o"
  "CMakeFiles/test_protocol.dir/test_protocol_races.cc.o.d"
  "CMakeFiles/test_protocol.dir/test_protocol_variants.cc.o"
  "CMakeFiles/test_protocol.dir/test_protocol_variants.cc.o.d"
  "CMakeFiles/test_protocol.dir/test_serial_llsc.cc.o"
  "CMakeFiles/test_protocol.dir/test_serial_llsc.cc.o.d"
  "CMakeFiles/test_protocol.dir/test_spurious_resv.cc.o"
  "CMakeFiles/test_protocol.dir/test_spurious_resv.cc.o.d"
  "CMakeFiles/test_protocol.dir/test_table1.cc.o"
  "CMakeFiles/test_protocol.dir/test_table1.cc.o.d"
  "test_protocol"
  "test_protocol.pdb"
  "test_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
