
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_param_sweeps.cc" "tests/CMakeFiles/test_protocol.dir/test_param_sweeps.cc.o" "gcc" "tests/CMakeFiles/test_protocol.dir/test_param_sweeps.cc.o.d"
  "/root/repo/tests/test_protocol_atomics.cc" "tests/CMakeFiles/test_protocol.dir/test_protocol_atomics.cc.o" "gcc" "tests/CMakeFiles/test_protocol.dir/test_protocol_atomics.cc.o.d"
  "/root/repo/tests/test_protocol_basic.cc" "tests/CMakeFiles/test_protocol.dir/test_protocol_basic.cc.o" "gcc" "tests/CMakeFiles/test_protocol.dir/test_protocol_basic.cc.o.d"
  "/root/repo/tests/test_protocol_llsc.cc" "tests/CMakeFiles/test_protocol.dir/test_protocol_llsc.cc.o" "gcc" "tests/CMakeFiles/test_protocol.dir/test_protocol_llsc.cc.o.d"
  "/root/repo/tests/test_protocol_races.cc" "tests/CMakeFiles/test_protocol.dir/test_protocol_races.cc.o" "gcc" "tests/CMakeFiles/test_protocol.dir/test_protocol_races.cc.o.d"
  "/root/repo/tests/test_protocol_variants.cc" "tests/CMakeFiles/test_protocol.dir/test_protocol_variants.cc.o" "gcc" "tests/CMakeFiles/test_protocol.dir/test_protocol_variants.cc.o.d"
  "/root/repo/tests/test_serial_llsc.cc" "tests/CMakeFiles/test_protocol.dir/test_serial_llsc.cc.o" "gcc" "tests/CMakeFiles/test_protocol.dir/test_serial_llsc.cc.o.d"
  "/root/repo/tests/test_spurious_resv.cc" "tests/CMakeFiles/test_protocol.dir/test_spurious_resv.cc.o" "gcc" "tests/CMakeFiles/test_protocol.dir/test_spurious_resv.cc.o.d"
  "/root/repo/tests/test_table1.cc" "tests/CMakeFiles/test_protocol.dir/test_table1.cc.o" "gcc" "tests/CMakeFiles/test_protocol.dir/test_table1.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dsm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
