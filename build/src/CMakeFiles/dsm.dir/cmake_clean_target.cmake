file(REMOVE_RECURSE
  "libdsm.a"
)
