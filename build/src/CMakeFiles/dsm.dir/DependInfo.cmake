
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/dsm.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/dsm.dir/cache/cache.cc.o.d"
  "/root/repo/src/cpu/proc.cc" "src/CMakeFiles/dsm.dir/cpu/proc.cc.o" "gcc" "src/CMakeFiles/dsm.dir/cpu/proc.cc.o.d"
  "/root/repo/src/cpu/sync_barrier.cc" "src/CMakeFiles/dsm.dir/cpu/sync_barrier.cc.o" "gcc" "src/CMakeFiles/dsm.dir/cpu/sync_barrier.cc.o.d"
  "/root/repo/src/cpu/system.cc" "src/CMakeFiles/dsm.dir/cpu/system.cc.o" "gcc" "src/CMakeFiles/dsm.dir/cpu/system.cc.o.d"
  "/root/repo/src/mem/backing_store.cc" "src/CMakeFiles/dsm.dir/mem/backing_store.cc.o" "gcc" "src/CMakeFiles/dsm.dir/mem/backing_store.cc.o.d"
  "/root/repo/src/mem/directory.cc" "src/CMakeFiles/dsm.dir/mem/directory.cc.o" "gcc" "src/CMakeFiles/dsm.dir/mem/directory.cc.o.d"
  "/root/repo/src/mem/mem_module.cc" "src/CMakeFiles/dsm.dir/mem/mem_module.cc.o" "gcc" "src/CMakeFiles/dsm.dir/mem/mem_module.cc.o.d"
  "/root/repo/src/net/mesh.cc" "src/CMakeFiles/dsm.dir/net/mesh.cc.o" "gcc" "src/CMakeFiles/dsm.dir/net/mesh.cc.o.d"
  "/root/repo/src/net/msg.cc" "src/CMakeFiles/dsm.dir/net/msg.cc.o" "gcc" "src/CMakeFiles/dsm.dir/net/msg.cc.o.d"
  "/root/repo/src/proto/checker.cc" "src/CMakeFiles/dsm.dir/proto/checker.cc.o" "gcc" "src/CMakeFiles/dsm.dir/proto/checker.cc.o.d"
  "/root/repo/src/proto/controller.cc" "src/CMakeFiles/dsm.dir/proto/controller.cc.o" "gcc" "src/CMakeFiles/dsm.dir/proto/controller.cc.o.d"
  "/root/repo/src/proto/controller_cpu.cc" "src/CMakeFiles/dsm.dir/proto/controller_cpu.cc.o" "gcc" "src/CMakeFiles/dsm.dir/proto/controller_cpu.cc.o.d"
  "/root/repo/src/proto/controller_home.cc" "src/CMakeFiles/dsm.dir/proto/controller_home.cc.o" "gcc" "src/CMakeFiles/dsm.dir/proto/controller_home.cc.o.d"
  "/root/repo/src/proto/controller_net.cc" "src/CMakeFiles/dsm.dir/proto/controller_net.cc.o" "gcc" "src/CMakeFiles/dsm.dir/proto/controller_net.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/dsm.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/dsm.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/dsm.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/dsm.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/dsm.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/dsm.dir/sim/logging.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/dsm.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/dsm.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/sharing_tracker.cc" "src/CMakeFiles/dsm.dir/stats/sharing_tracker.cc.o" "gcc" "src/CMakeFiles/dsm.dir/stats/sharing_tracker.cc.o.d"
  "/root/repo/src/stats/stat_set.cc" "src/CMakeFiles/dsm.dir/stats/stat_set.cc.o" "gcc" "src/CMakeFiles/dsm.dir/stats/stat_set.cc.o.d"
  "/root/repo/src/sync/backoff.cc" "src/CMakeFiles/dsm.dir/sync/backoff.cc.o" "gcc" "src/CMakeFiles/dsm.dir/sync/backoff.cc.o.d"
  "/root/repo/src/sync/central_barrier.cc" "src/CMakeFiles/dsm.dir/sync/central_barrier.cc.o" "gcc" "src/CMakeFiles/dsm.dir/sync/central_barrier.cc.o.d"
  "/root/repo/src/sync/clh_lock.cc" "src/CMakeFiles/dsm.dir/sync/clh_lock.cc.o" "gcc" "src/CMakeFiles/dsm.dir/sync/clh_lock.cc.o.d"
  "/root/repo/src/sync/lockfree_counter.cc" "src/CMakeFiles/dsm.dir/sync/lockfree_counter.cc.o" "gcc" "src/CMakeFiles/dsm.dir/sync/lockfree_counter.cc.o.d"
  "/root/repo/src/sync/mcs_lock.cc" "src/CMakeFiles/dsm.dir/sync/mcs_lock.cc.o" "gcc" "src/CMakeFiles/dsm.dir/sync/mcs_lock.cc.o.d"
  "/root/repo/src/sync/ms_queue.cc" "src/CMakeFiles/dsm.dir/sync/ms_queue.cc.o" "gcc" "src/CMakeFiles/dsm.dir/sync/ms_queue.cc.o.d"
  "/root/repo/src/sync/priority_lock.cc" "src/CMakeFiles/dsm.dir/sync/priority_lock.cc.o" "gcc" "src/CMakeFiles/dsm.dir/sync/priority_lock.cc.o.d"
  "/root/repo/src/sync/rw_lock.cc" "src/CMakeFiles/dsm.dir/sync/rw_lock.cc.o" "gcc" "src/CMakeFiles/dsm.dir/sync/rw_lock.cc.o.d"
  "/root/repo/src/sync/ticket_lock.cc" "src/CMakeFiles/dsm.dir/sync/ticket_lock.cc.o" "gcc" "src/CMakeFiles/dsm.dir/sync/ticket_lock.cc.o.d"
  "/root/repo/src/sync/tree_barrier.cc" "src/CMakeFiles/dsm.dir/sync/tree_barrier.cc.o" "gcc" "src/CMakeFiles/dsm.dir/sync/tree_barrier.cc.o.d"
  "/root/repo/src/sync/treiber_stack.cc" "src/CMakeFiles/dsm.dir/sync/treiber_stack.cc.o" "gcc" "src/CMakeFiles/dsm.dir/sync/treiber_stack.cc.o.d"
  "/root/repo/src/sync/tts_lock.cc" "src/CMakeFiles/dsm.dir/sync/tts_lock.cc.o" "gcc" "src/CMakeFiles/dsm.dir/sync/tts_lock.cc.o.d"
  "/root/repo/src/workloads/counter_apps.cc" "src/CMakeFiles/dsm.dir/workloads/counter_apps.cc.o" "gcc" "src/CMakeFiles/dsm.dir/workloads/counter_apps.cc.o.d"
  "/root/repo/src/workloads/task_queue_apps.cc" "src/CMakeFiles/dsm.dir/workloads/task_queue_apps.cc.o" "gcc" "src/CMakeFiles/dsm.dir/workloads/task_queue_apps.cc.o.d"
  "/root/repo/src/workloads/transitive_closure.cc" "src/CMakeFiles/dsm.dir/workloads/transitive_closure.cc.o" "gcc" "src/CMakeFiles/dsm.dir/workloads/transitive_closure.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
