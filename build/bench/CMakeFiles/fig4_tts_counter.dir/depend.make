# Empty dependencies file for fig4_tts_counter.
# This may be replaced when dependencies are built.
