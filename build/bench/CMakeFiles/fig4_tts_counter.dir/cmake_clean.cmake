file(REMOVE_RECURSE
  "CMakeFiles/fig4_tts_counter.dir/fig4_tts_counter.cc.o"
  "CMakeFiles/fig4_tts_counter.dir/fig4_tts_counter.cc.o.d"
  "fig4_tts_counter"
  "fig4_tts_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_tts_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
