file(REMOVE_RECURSE
  "CMakeFiles/fig5_mcs_counter.dir/fig5_mcs_counter.cc.o"
  "CMakeFiles/fig5_mcs_counter.dir/fig5_mcs_counter.cc.o.d"
  "fig5_mcs_counter"
  "fig5_mcs_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_mcs_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
