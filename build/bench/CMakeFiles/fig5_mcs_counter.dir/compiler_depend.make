# Empty compiler generated dependencies file for fig5_mcs_counter.
# This may be replaced when dependencies are built.
