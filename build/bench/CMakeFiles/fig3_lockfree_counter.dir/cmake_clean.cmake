file(REMOVE_RECURSE
  "CMakeFiles/fig3_lockfree_counter.dir/fig3_lockfree_counter.cc.o"
  "CMakeFiles/fig3_lockfree_counter.dir/fig3_lockfree_counter.cc.o.d"
  "fig3_lockfree_counter"
  "fig3_lockfree_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_lockfree_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
