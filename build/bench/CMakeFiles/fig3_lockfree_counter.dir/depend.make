# Empty dependencies file for fig3_lockfree_counter.
# This may be replaced when dependencies are built.
