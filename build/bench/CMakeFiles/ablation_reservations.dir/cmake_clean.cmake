file(REMOVE_RECURSE
  "CMakeFiles/ablation_reservations.dir/ablation_reservations.cc.o"
  "CMakeFiles/ablation_reservations.dir/ablation_reservations.cc.o.d"
  "ablation_reservations"
  "ablation_reservations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reservations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
