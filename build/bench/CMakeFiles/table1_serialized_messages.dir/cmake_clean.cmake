file(REMOVE_RECURSE
  "CMakeFiles/table1_serialized_messages.dir/table1_serialized_messages.cc.o"
  "CMakeFiles/table1_serialized_messages.dir/table1_serialized_messages.cc.o.d"
  "table1_serialized_messages"
  "table1_serialized_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_serialized_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
