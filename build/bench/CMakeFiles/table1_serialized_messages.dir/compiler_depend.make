# Empty compiler generated dependencies file for table1_serialized_messages.
# This may be replaced when dependencies are built.
