# Empty compiler generated dependencies file for ablation_serial_llsc.
# This may be replaced when dependencies are built.
