file(REMOVE_RECURSE
  "CMakeFiles/ablation_serial_llsc.dir/ablation_serial_llsc.cc.o"
  "CMakeFiles/ablation_serial_llsc.dir/ablation_serial_llsc.cc.o.d"
  "ablation_serial_llsc"
  "ablation_serial_llsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_serial_llsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
