file(REMOVE_RECURSE
  "CMakeFiles/fig2_contention_histograms.dir/fig2_contention_histograms.cc.o"
  "CMakeFiles/fig2_contention_histograms.dir/fig2_contention_histograms.cc.o.d"
  "fig2_contention_histograms"
  "fig2_contention_histograms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_contention_histograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
