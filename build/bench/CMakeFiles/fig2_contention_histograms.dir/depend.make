# Empty dependencies file for fig2_contention_histograms.
# This may be replaced when dependencies are built.
