# Empty compiler generated dependencies file for primitive_shootout.
# This may be replaced when dependencies are built.
