file(REMOVE_RECURSE
  "CMakeFiles/primitive_shootout.dir/primitive_shootout.cpp.o"
  "CMakeFiles/primitive_shootout.dir/primitive_shootout.cpp.o.d"
  "primitive_shootout"
  "primitive_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primitive_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
