# Empty compiler generated dependencies file for transitive_closure_demo.
# This may be replaced when dependencies are built.
