file(REMOVE_RECURSE
  "CMakeFiles/transitive_closure_demo.dir/transitive_closure_demo.cpp.o"
  "CMakeFiles/transitive_closure_demo.dir/transitive_closure_demo.cpp.o.d"
  "transitive_closure_demo"
  "transitive_closure_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transitive_closure_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
