# Empty dependencies file for aba_pointer_problem.
# This may be replaced when dependencies are built.
