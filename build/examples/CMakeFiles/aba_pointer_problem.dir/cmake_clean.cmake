file(REMOVE_RECURSE
  "CMakeFiles/aba_pointer_problem.dir/aba_pointer_problem.cpp.o"
  "CMakeFiles/aba_pointer_problem.dir/aba_pointer_problem.cpp.o.d"
  "aba_pointer_problem"
  "aba_pointer_problem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aba_pointer_problem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
