file(REMOVE_RECURSE
  "CMakeFiles/pipeline_queue.dir/pipeline_queue.cpp.o"
  "CMakeFiles/pipeline_queue.dir/pipeline_queue.cpp.o.d"
  "pipeline_queue"
  "pipeline_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
