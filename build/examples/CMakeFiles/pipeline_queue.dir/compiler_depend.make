# Empty compiler generated dependencies file for pipeline_queue.
# This may be replaced when dependencies are built.
