file(REMOVE_RECURSE
  "CMakeFiles/bank_mcs_lock.dir/bank_mcs_lock.cpp.o"
  "CMakeFiles/bank_mcs_lock.dir/bank_mcs_lock.cpp.o.d"
  "bank_mcs_lock"
  "bank_mcs_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_mcs_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
