# Empty dependencies file for bank_mcs_lock.
# This may be replaced when dependencies are built.
