/**
 * @file
 * Faulty-channel chaos campaign: the Figure 6 implementation matrix
 * (INV/UPD/UNC x FAP/LL-SC/CAS) under all six channel fault axes at
 * once — delivery jitter, random message loss, flaky-link episodes,
 * bounded-skew reordering, delayed duplication, and payload corruption
 * — at escalating intensities. Every point runs the lock-free counter
 * under contention, then asserts the end-to-end hardening promise: the
 * run completes (no watchdog trip), the counter's final value is
 * exact, checkCoherence() finds no violation, checkFaultAccounting()
 * reconciles the extended ledger (every drop covered, every corruption
 * detected, every duplicate absorbed, every reorder delivered), and
 * the transaction tracer's phase sums still partition every latency.
 *
 * Usage: chaos_sweep [--seeds K] [--seed BASE] [--jobs N]
 *
 * DSM_FAULTS, when set, replaces the built-in chaos axis with the
 * given spec as a single level — the failure repro line uses exactly
 * this. On failure a WATCHDOG_chaos_sweep_<point-index>_<impl>_
 * <level>_<seed>.txt diagnosis dump is written next to
 * BENCH_chaos_sweep.json (the point index keeps dumps collision-free
 * under --jobs N).
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "cpu/system.hh"
#include "exp/experiment.hh"
#include "fault/fault.hh"
#include "fault/recovery.hh"
#include "proto/checker.hh"
#include "sim/logging.hh"
#include "workloads/counter_apps.hh"

using namespace dsm;

namespace {

int
parseSeedsFlag(int argc, char **argv, int fallback)
{
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        const char *v = nullptr;
        if (std::strncmp(a, "--seeds=", 8) == 0)
            v = a + 8;
        else if (std::strcmp(a, "--seeds") == 0 && i + 1 < argc)
            v = argv[i + 1];
        if (v != nullptr) {
            char *end = nullptr;
            long n = std::strtol(v, &end, 10);
            if (end == v || *end != '\0' || n < 1)
                dsm_fatal("--seeds expects a positive integer, got "
                          "'%s'", v);
            return static_cast<int>(n);
        }
    }
    return fallback;
}

std::string
fileLabel(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        if (c == ' ' || c == '+' || c == '/')
            c = '_';
    return out;
}

/** One chaos level: a label and a DSM_FAULTS-style spec. */
struct ChaosLevel
{
    std::string label;
    FaultConfig cfg;
    std::string spec;
};

ChaosLevel
makeLevel(std::string label, std::string spec)
{
    ChaosLevel lv;
    lv.label = std::move(label);
    lv.spec = std::move(spec);
    std::string err = lv.cfg.parse(lv.spec);
    if (!err.empty())
        dsm_fatal("chaos level '%s': %s", lv.label.c_str(),
                  err.c_str());
    return lv;
}

struct Failure
{
    std::size_t index;
    std::string impl;
    std::string level;
    std::string spec;
    std::uint64_t seed;
    std::string report;
};

} // namespace

int
main(int argc, char **argv)
{
    int jobs = parseJobsFlag(argc, argv);
    int nseeds = parseSeedsFlag(argc, argv, 8);
    std::uint64_t base = parseSeedFlag(argc, argv);
    if (base == 0)
        base = seedFromEnv();
    if (base == 0)
        base = 1;
    // Seeds and fault plans are assigned per point; consume the global
    // overrides so Experiment::run() does not flatten them again.
    unsetenv("DSM_SEED");

    // The chaos axis: every channel fault armed at once, escalating.
    // "mild" keeps each axis rare, "moderate" raises every rate, and
    // "heavy+flaky" adds a guaranteed whole-link flaky episode with
    // quarantine plus the LL reservation age bound. DSM_FAULTS
    // replaces the axis with a single custom level.
    std::vector<ChaosLevel> levels;
    FaultConfig env = faultConfigFromEnv();
    if (env.enabled) {
        ChaosLevel lv;
        lv.label = "custom";
        lv.cfg = env;
        lv.spec = env.summary();
        levels.push_back(std::move(lv));
    } else {
        levels.push_back(makeLevel(
            "mild",
            "jitter_prob=0.001,jitter_max=8,drop_prob=0.0002,"
            "reorder_prob=0.0005,reorder_max=16,dup_prob=0.0005,"
            "dup_delay=32,corrupt_prob=0.0002,req_timeout=2000"));
        levels.push_back(makeLevel(
            "moderate",
            "jitter_prob=0.002,jitter_max=16,drop_prob=0.0005,"
            "reorder_prob=0.001,reorder_max=32,dup_prob=0.001,"
            "dup_delay=64,corrupt_prob=0.0005,req_timeout=2000"));
        levels.push_back(makeLevel(
            "heavy+flaky",
            "jitter_prob=0.005,jitter_max=32,drop_prob=0.001,"
            "flaky_links=1,flaky_window=50000,flaky_duration=50000,"
            "flaky_drop_prob=1,quarantine_k=2,"
            "quarantine_window=1000000000,reorder_prob=0.002,"
            "reorder_max=64,dup_prob=0.002,dup_delay=128,"
            "corrupt_prob=0.001,resv_max_age=200000,req_timeout=2000"));
    }

    Config cfg0;
    cfg0.machine.num_procs = 16;
    cfg0.machine.mesh_x = 4;
    cfg0.machine.mesh_y = 4;
    cfg0.machine.retry_jitter = 4;

    Experiment ex("chaos_sweep", cfg0);
    ex.title(csprintf("Faulty-channel chaos campaign: lock-free "
                      "counter, p=16, c=8, %zu level(s), %d seed(s) "
                      "from %llu",
                      levels.size(), nseeds, (unsigned long long)base))
        .meta("app", "lock-free counter")
        .meta("seeds", nseeds)
        .meta("levels", static_cast<int>(levels.size()))
        .rowKey("impl")
        .colKey("chaos")
        .table(false);

    std::mutex fail_mutex;
    std::vector<Failure> failures;
    std::atomic<std::uint64_t> total_drops{0};
    std::atomic<std::uint64_t> total_retransmits{0};
    std::atomic<std::uint64_t> total_reorders{0};
    std::atomic<std::uint64_t> total_dups{0};
    std::atomic<std::uint64_t> total_corruptions{0};
    std::atomic<std::uint64_t> total_watchdog_trips{0};

    std::size_t index = 0;
    for (const ImplCase &impl : applicationMatrix()) {
        for (const ChaosLevel &lv : levels) {
            for (int k = 0; k < nseeds; ++k, ++index) {
                Config cfg = ex.configFor(impl);
                cfg.machine.seed =
                    base + static_cast<std::uint64_t>(k);
                cfg.faults = lv.cfg;
                // Phase-sum validation rides along on every point.
                cfg.txn_trace.enabled = true;
                // Forward-progress bounds: chaos stretches transactions
                // by recovery timeouts and skew, so the age bound is
                // generous, but a trip still means livelock.
                cfg.watchdog.enabled = true;
                cfg.watchdog.max_retries = 100000;
                cfg.watchdog.max_txn_age = 5'000'000;
                cfg.watchdog.scan_period = 50'000;
                std::uint64_t seed = cfg.machine.seed;
                std::string spec = lv.spec;
                std::string level = lv.label;
                std::size_t idx = index;
                ex.point(
                    impl.label,
                    csprintf("%s/%llu", level.c_str(),
                             (unsigned long long)seed),
                    cfg,
                    [&, impl, seed, spec, level, idx](System &sys) {
                        CounterAppConfig app;
                        app.kind = CounterKind::LOCK_FREE;
                        app.prim = impl.prim;
                        // Rates are per message: the run must be long
                        // enough that every axis expects many events.
                        app.contention = 8;
                        app.phases = 64;
                        CounterAppResult r = runCounterApp(sys, app);

                        std::vector<std::string> problems;
                        if (!r.completed) {
                            const Watchdog &wd = sys.watchdogState();
                            if (wd.tripped())
                                ++total_watchdog_trips;
                            problems.push_back(
                                wd.tripped()
                                    ? wd.diagnosis()
                                    : "run did not complete:\n" +
                                          Watchdog::blockedTxnDump(
                                              sys));
                        } else {
                            if (!r.correct)
                                problems.push_back(
                                    "final counter value is wrong");
                            for (std::string &v : checkCoherence(sys))
                                problems.push_back(std::move(v));
                            for (std::string &v :
                                 checkFaultAccounting(sys))
                                problems.push_back(std::move(v));
                            if (sys.txns().phaseSumMismatches() != 0)
                                problems.push_back(csprintf(
                                    "%llu transaction phase-sum "
                                    "mismatch(es)",
                                    (unsigned long long)sys.txns()
                                        .phaseSumMismatches()));
                        }

                        const FaultPlan::Counters &fctr =
                            sys.faultPlan().counters();
                        const Recovery::Counters &rctr =
                            sys.recoveryState().counters();
                        total_drops += rctr.drops;
                        total_retransmits += rctr.retransmits;
                        total_reorders += fctr.msg_reorders;
                        total_dups += fctr.msg_dups;
                        total_corruptions += fctr.msg_corruptions;

                        PointResult res;
                        res.value = r.avg_cycles_per_update;
                        res.metrics = collectRunMetrics(sys);
                        SysStats agg = sys.stats();
                        res.fields.set("seed", seed)
                            .set("ok", static_cast<std::uint64_t>(
                                           problems.empty() ? 1 : 0))
                            .set("updates", r.updates)
                            .set("retries", agg.retries)
                            .set("nacks", agg.nacks)
                            .set("msg_drops", fctr.msg_drops)
                            .set("flaky_drops", fctr.flaky_drops)
                            .set("msg_reorders", fctr.msg_reorders)
                            .set("msg_dups", fctr.msg_dups)
                            .set("msg_corruptions",
                                 fctr.msg_corruptions)
                            .set("drops", rctr.drops)
                            .set("retransmits", rctr.retransmits)
                            .set("retransmit_covered",
                                 rctr.retransmit_covered)
                            .set("quarantine_covered",
                                 rctr.quarantine_covered)
                            .set("corrupt_detected",
                                 rctr.corrupt_detected)
                            .set("dups_absorbed", rctr.dups_absorbed)
                            .set("reorders_delivered",
                                 rctr.reorders_delivered)
                            .set("links_quarantined",
                                 rctr.links_quarantined)
                            .set("stale_replies", rctr.stale_replies);

                        if (!problems.empty()) {
                            std::string report = csprintf(
                                "chaos_sweep failure: impl=%s "
                                "level=%s seed=%llu\n"
                                "fault spec: %s\n",
                                impl.label.c_str(), level.c_str(),
                                (unsigned long long)seed,
                                spec.c_str());
                            for (const std::string &p : problems)
                                report += p + "\n";
                            std::lock_guard<std::mutex> g(fail_mutex);
                            failures.push_back(Failure{
                                idx, impl.label, level, spec, seed,
                                report});
                        }
                        return res;
                    });
            }
        }
    }

    ex.run(jobs);

    const char *dir = std::getenv("DSM_BENCH_DIR");
    std::string d = dir != nullptr && dir[0] != '\0' ? dir : ".";
    for (const Failure &f : failures) {
        std::string path = csprintf(
            "%s/WATCHDOG_chaos_sweep_%zu_%s_%s_%llu.txt", d.c_str(),
            f.index, fileLabel(f.impl).c_str(),
            fileLabel(f.level).c_str(), (unsigned long long)f.seed);
        std::ofstream out(path, std::ios::binary);
        if (out)
            out << f.report;
        std::fprintf(stderr, "FAILED %s level=%s seed=%llu -> %s\n",
                     f.impl.c_str(), f.level.c_str(),
                     (unsigned long long)f.seed, path.c_str());
    }

    std::printf("campaign: %zu points (9 impls x %zu levels x %d "
                "seeds), %llu drops, %llu retransmits, %llu reorders, "
                "%llu dups, %llu corruptions, %llu watchdog trip(s), "
                "%zu failure(s)\n",
                ex.numPoints(), levels.size(), nseeds,
                (unsigned long long)total_drops.load(),
                (unsigned long long)total_retransmits.load(),
                (unsigned long long)total_reorders.load(),
                (unsigned long long)total_dups.load(),
                (unsigned long long)total_corruptions.load(),
                (unsigned long long)total_watchdog_trips.load(),
                failures.size());
    // The campaign must actually exercise every axis it certifies: a
    // silently fault-free "pass" would prove nothing. Only axes some
    // level actually arms are asserted — a single-axis DSM_FAULTS
    // repro must not fail on the axes it deliberately left off.
    bool arm_loss = false, arm_reorder = false, arm_dup = false,
         arm_corrupt = false;
    for (const ChaosLevel &lv : levels) {
        arm_loss |= lv.cfg.msg_drop_prob > 0.0 || lv.cfg.flaky_links > 0;
        arm_reorder |= lv.cfg.reorder_prob > 0.0;
        arm_dup |= lv.cfg.dup_prob > 0.0;
        arm_corrupt |= lv.cfg.corrupt_prob > 0.0;
    }
    bool drops_expected = arm_loss || arm_corrupt;
    if ((drops_expected &&
         (total_drops.load() == 0 || total_retransmits.load() == 0)) ||
        (arm_reorder && total_reorders.load() == 0) ||
        (arm_dup && total_dups.load() == 0) ||
        (arm_corrupt && total_corruptions.load() == 0)) {
        std::printf("campaign error: some chaos axis injected nothing "
                    "(drops %llu, retransmits %llu, reorders %llu, "
                    "dups %llu, corruptions %llu); the axis is "
                    "miswired\n",
                    (unsigned long long)total_drops.load(),
                    (unsigned long long)total_retransmits.load(),
                    (unsigned long long)total_reorders.load(),
                    (unsigned long long)total_dups.load(),
                    (unsigned long long)total_corruptions.load());
        return 1;
    }
    if (!failures.empty()) {
        // The fault spec is part of the point's identity: repeat it
        // verbatim so the repro rebuilds the exact fault stream.
        const Failure &f = failures.front();
        std::printf("reproduce with: DSM_FAULTS='%s' chaos_sweep "
                    "--seeds 1 --seed %llu\n",
                    f.spec.c_str(), (unsigned long long)f.seed);
        return 1;
    }
    return 0;
}
