/**
 * @file
 * Regenerates Figure 4: average time per counter update for the counter
 * protected by a test-and-test-and-set lock with bounded exponential
 * backoff.
 */

#include "fig_counter_common.hh"

int
main(int argc, char **argv)
{
    dsmbench::runFigure("fig4_tts_counter", "Figure 4",
                        dsm::CounterKind::TTS,
                        dsm::parseJobsFlag(argc, argv),
                        dsm::parseSeedFlag(argc, argv));
    return 0;
}
