/**
 * @file
 * Regenerates Figure 6: total elapsed time for the parallel part of
 * LocusRoute(-like), Cholesky(-like), and Transitive Closure with
 * different implementations of atomic primitives (policy x primitive).
 */

#include "cpu/system.hh"
#include "exp/experiment.hh"
#include "sim/logging.hh"
#include "workloads/task_queue_apps.hh"
#include "workloads/transitive_closure.hh"

using namespace dsm;

namespace {

double
runLocus(System &sys, const ImplCase &impl)
{
    TaskQueueConfig app;
    app.prim = impl.prim;
    app.num_tasks = 384;
    app.work_min = 80000;
    app.work_max = 240000;
    TaskQueueResult r = runLocusLike(sys, app);
    if (!r.completed || !r.correct)
        dsm_fatal("locus-like failed under %s", impl.label.c_str());
    return static_cast<double>(r.elapsed);
}

double
runCholesky(System &sys, const ImplCase &impl)
{
    TaskQueueConfig app;
    app.prim = impl.prim;
    app.num_tasks = 384;
    app.work_min = 30000;
    app.work_max = 90000;
    app.cs_words = 3;
    app.backoff_cap = 4096;
    TaskQueueResult r = runCholeskyLike(sys, app);
    if (!r.completed || !r.correct)
        dsm_fatal("cholesky-like failed under %s", impl.label.c_str());
    return static_cast<double>(r.elapsed);
}

double
runTc(System &sys, const ImplCase &impl)
{
    TcConfig app;
    app.size = 48;
    app.prim = impl.prim;
    app.edge_pct = 8;
    TcResult r = runTransitiveClosure(sys, app);
    if (!r.completed || !r.correct)
        dsm_fatal("transitive closure failed under %s",
                  impl.label.c_str());
    return static_cast<double>(r.elapsed);
}

} // namespace

int
main(int argc, char **argv)
{
    Experiment::paper64("fig6_applications")
        .title("Figure 6: total elapsed cycles for the parallel part "
               "of each application")
        .title("(p=64; LocusRoute and Cholesky as documented stand-ins)")
        .meta("figure", "Figure 6")
        .colKey("app")
        .impls(applicationMatrix())
        .workload([](System &sys, const ImplCase &impl,
                     const SweepPoint &sp) {
            double elapsed = 0;
            if (sp.label == "LocusRoute")
                elapsed = runLocus(sys, impl);
            else if (sp.label == "Cholesky")
                elapsed = runCholesky(sys, impl);
            else
                elapsed = runTc(sys, impl);
            PointResult res;
            res.value = elapsed;
            res.metrics = collectRunMetrics(sys);
            res.fields.set("elapsed", elapsed);
            return res;
        })
        .cases("app", {"LocusRoute", "Cholesky", "TransClosure"})
        .seed(parseSeedFlag(argc, argv))
        .run(parseJobsFlag(argc, argv));
    return 0;
}
