/**
 * @file
 * Regenerates Figure 6: total elapsed time for the parallel part of
 * LocusRoute(-like), Cholesky(-like), and Transitive Closure with
 * different implementations of atomic primitives (policy x primitive).
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/task_queue_apps.hh"
#include "workloads/transitive_closure.hh"

using namespace dsmbench;

namespace {

double
runLocus(const ImplCase &impl, RunMetrics *metrics)
{
    Config cfg = paperConfig(impl.sync.policy);
    cfg.sync = impl.sync;
    System sys(cfg);
    TaskQueueConfig app;
    app.prim = impl.prim;
    app.num_tasks = 384;
    app.work_min = 80000;
    app.work_max = 240000;
    TaskQueueResult r = runLocusLike(sys, app);
    if (!r.completed || !r.correct)
        dsm_fatal("locus-like failed under %s", impl.label.c_str());
    *metrics = collectRunMetrics(sys);
    return static_cast<double>(r.elapsed);
}

double
runCholesky(const ImplCase &impl, RunMetrics *metrics)
{
    Config cfg = paperConfig(impl.sync.policy);
    cfg.sync = impl.sync;
    System sys(cfg);
    TaskQueueConfig app;
    app.prim = impl.prim;
    app.num_tasks = 384;
    app.work_min = 30000;
    app.work_max = 90000;
    app.cs_words = 3;
    app.backoff_cap = 4096;
    TaskQueueResult r = runCholeskyLike(sys, app);
    if (!r.completed || !r.correct)
        dsm_fatal("cholesky-like failed under %s", impl.label.c_str());
    *metrics = collectRunMetrics(sys);
    return static_cast<double>(r.elapsed);
}

double
runTc(const ImplCase &impl, RunMetrics *metrics)
{
    Config cfg = paperConfig(impl.sync.policy);
    cfg.sync = impl.sync;
    System sys(cfg);
    TcConfig app;
    app.size = 48;
    app.prim = impl.prim;
    app.edge_pct = 8;
    TcResult r = runTransitiveClosure(sys, app);
    if (!r.completed || !r.correct)
        dsm_fatal("transitive closure failed under %s",
                  impl.label.c_str());
    *metrics = collectRunMetrics(sys);
    return static_cast<double>(r.elapsed);
}

} // namespace

int
main()
{
    std::printf("Figure 6: total elapsed cycles for the parallel part "
                "of each application\n(p=64; LocusRoute and Cholesky as "
                "documented stand-ins)\n");

    std::vector<std::string> cols = {"LocusRoute", "Cholesky",
                                     "TransClosure"};
    printHeader("", cols);

    BenchReport rep("fig6_applications");
    rep.meta("figure", "Figure 6");
    addMachineMeta(rep, paperConfig());

    using RunFn = double (*)(const ImplCase &, RunMetrics *);
    const RunFn fns[] = {runLocus, runCholesky, runTc};
    for (const ImplCase &impl : applicationImplementations()) {
        std::vector<double> vals;
        for (std::size_t i = 0; i < cols.size(); ++i) {
            RunMetrics m;
            double elapsed = fns[i](impl, &m);
            vals.push_back(elapsed);
            rep.row()
                .set("impl", impl.label)
                .set("app", cols[i])
                .set("elapsed", elapsed)
                .metrics(m);
        }
        printRow(impl.label, vals);
    }
    writeReport(rep);
    return 0;
}
