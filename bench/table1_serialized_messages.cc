/**
 * @file
 * Regenerates Table 1 of the paper: serialized network messages for
 * stores to shared memory with different coherence policies, measured
 * from directed single-store experiments on the simulator (not computed
 * analytically). The "paper" column lists the published counts.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace dsmbench;

namespace {

Task
storeOnce(Proc &p, Addr a)
{
    co_await p.store(a, 99);
}

Task
loadOnce(Proc &p, Addr a)
{
    co_await p.load(a);
}

Task
dropOnce(Proc &p, Addr a)
{
    co_await p.dropCopy(a);
}

void
run(System &sys, Task t)
{
    sys.spawn(std::move(t));
    RunResult r = sys.run();
    if (!r.completed)
        dsm_fatal("table1 experiment deadlocked");
    sys.reapTasks();
}

/**
 * Measure the serialized-message chain of a store by proc 0. The
 * registry snapshot/diff isolates the network traffic of the measured
 * store from the setup traffic (mesh counters are not reset by
 * clearStats).
 */
int
measure(System &sys, Addr a, RunMetrics *metrics = nullptr)
{
    sys.clearStats();
    StatsRegistry::Snapshot before = sys.registry().snapshot();
    run(sys, storeOnce(sys.proc(0), a));
    if (metrics != nullptr) {
        *metrics = collectRunMetrics(sys);
        StatsRegistry::Snapshot delta =
            StatsRegistry::diff(sys.registry().snapshot(), before);
        metrics->messages = delta["net.messages"];
        metrics->flits = delta["net.flits"];
    }
    return static_cast<int>(sys.stats().chain_length.max());
}

struct Row
{
    const char *name;
    int paper;
    int measured;
    RunMetrics metrics;
};

} // namespace

int
main()
{
    std::vector<Row> rows;

    {
        System sys(paperConfig(SyncPolicy::UNC));
        Addr a = sys.allocSyncAt(9);
        RunMetrics m;
        rows.push_back({"UNC", 2, measure(sys, a, &m), m});
    }
    {
        System sys(paperConfig(SyncPolicy::INV));
        Addr a = sys.allocSyncAt(9);
        run(sys, storeOnce(sys.proc(0), a)); // proc 0 takes ownership
        RunMetrics m;
        rows.push_back({"INV to cached exclusive", 0,
                        measure(sys, a, &m), m});
    }
    {
        System sys(paperConfig(SyncPolicy::INV));
        Addr a = sys.allocSyncAt(9);
        run(sys, storeOnce(sys.proc(5), a)); // remote owner
        RunMetrics m;
        rows.push_back({"INV to remote exclusive", 4,
                        measure(sys, a, &m), m});
    }
    {
        System sys(paperConfig(SyncPolicy::INV));
        Addr a = sys.allocSyncAt(9);
        run(sys, loadOnce(sys.proc(5), a));
        run(sys, loadOnce(sys.proc(6), a)); // remote shared copies
        RunMetrics m;
        rows.push_back({"INV to remote shared", 3,
                        measure(sys, a, &m), m});
    }
    {
        System sys(paperConfig(SyncPolicy::INV));
        Addr a = sys.allocSyncAt(9);
        RunMetrics m;
        rows.push_back({"INV to uncached", 2, measure(sys, a, &m), m});
    }
    {
        System sys(paperConfig(SyncPolicy::UPD));
        Addr a = sys.allocSyncAt(9);
        run(sys, loadOnce(sys.proc(5), a)); // a remote cached copy
        RunMetrics m;
        rows.push_back({"UPD to cached", 3, measure(sys, a, &m), m});
    }
    {
        System sys(paperConfig(SyncPolicy::UPD));
        Addr a = sys.allocSyncAt(9);
        RunMetrics m;
        rows.push_back({"UPD to uncached", 2, measure(sys, a, &m), m});
    }

    std::printf("Table 1: serialized network messages for stores to "
                "shared memory\n\n");
    std::printf("%-28s %8s %10s\n", "case", "paper", "measured");
    std::printf("------------------------------------------------\n");
    BenchReport rep("table1_serialized_messages");
    rep.meta("table", "Table 1");
    addMachineMeta(rep, paperConfig());
    bool all_match = true;
    for (const Row &r : rows) {
        std::printf("%-28s %8d %10d%s\n", r.name, r.paper, r.measured,
                    r.paper == r.measured ? "" : "   <-- MISMATCH");
        all_match &= r.paper == r.measured;
        rep.row()
            .set("case", r.name)
            .set("paper", r.paper)
            .set("measured", r.measured)
            .metrics(r.metrics);
    }

    // Supplementary: the drop_copy effect the paper derives from these
    // counts (a dropped exclusive line turns the next store from a
    // 4-message into a 2-message transaction).
    {
        System sys(paperConfig(SyncPolicy::INV));
        Addr a = sys.allocSyncAt(9);
        run(sys, storeOnce(sys.proc(5), a));
        run(sys, dropOnce(sys.proc(5), a));
        RunMetrics m;
        int chain = measure(sys, a, &m);
        std::printf("\nwith drop_copy after remote exclusive: store "
                    "takes %d serialized messages (vs 4 without)\n",
                    chain);
        rep.row()
            .set("case", "INV remote exclusive + drop_copy")
            .set("paper", 2)
            .set("measured", chain)
            .metrics(m);
    }

    writeReport(rep);
    std::printf("\n%s\n", all_match ? "ALL ROWS MATCH TABLE 1"
                                    : "SOME ROWS MISMATCH");
    return all_match ? 0 : 1;
}
