/**
 * @file
 * Regenerates Table 1 of the paper: serialized network messages for
 * stores to shared memory with different coherence policies, measured
 * from directed single-store experiments on the simulator (not computed
 * analytically). The "paper" column lists the published counts.
 */

#include <cstdio>

#include "cpu/system.hh"
#include "exp/experiment.hh"
#include "sim/logging.hh"

using namespace dsm;

namespace {

Task
storeOnce(Proc &p, Addr a)
{
    co_await p.store(a, 99);
}

Task
loadOnce(Proc &p, Addr a)
{
    co_await p.load(a);
}

Task
dropOnce(Proc &p, Addr a)
{
    co_await p.dropCopy(a);
}

void
run(System &sys, Task t)
{
    sys.spawn(std::move(t));
    RunResult r = sys.run();
    if (!r.completed)
        dsm_fatal("table1 experiment deadlocked");
    sys.reapTasks();
}

/**
 * Measure the serialized-message chain of a store by proc 0. The
 * registry snapshot/diff isolates the network traffic of the measured
 * store from the setup traffic (mesh counters are not reset by
 * clearStats).
 */
int
measure(System &sys, Addr a, RunMetrics *metrics = nullptr)
{
    sys.clearStats();
    StatsRegistry::Snapshot before = sys.registry().snapshot();
    run(sys, storeOnce(sys.proc(0), a));
    if (metrics != nullptr) {
        *metrics = collectRunMetrics(sys);
        StatsRegistry::Snapshot delta =
            StatsRegistry::diff(sys.registry().snapshot(), before);
        metrics->messages = delta["net.messages"];
        metrics->flits = delta["net.flits"];
    }
    return static_cast<int>(sys.stats().chain_length.max());
}

/** Setup traffic issued before the measured store. */
using SetupFn = void (*)(System &, Addr);

/** Harvest one directed case: run setup, measure, render the row. */
PointResult
directedCase(System &sys, const char *name, int paper, SetupFn setup)
{
    Addr a = sys.allocSyncAt(9);
    if (setup != nullptr)
        setup(sys, a);
    RunMetrics m;
    int measured = measure(sys, a, &m);
    PointResult res;
    res.value = measured;
    res.metrics = m;
    res.fields.set("paper", paper).set("measured", measured);
    res.text = csprintf("%-28s %8d %10d%s\n", name, paper, measured,
                        paper == measured ? "" : "   <-- MISMATCH");
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    Experiment ex = Experiment::paper64("table1_serialized_messages");
    ex.title("Table 1: serialized network messages for stores to "
             "shared memory")
        .title("")
        .title(csprintf("%-28s %8s %10s", "case", "paper", "measured"))
        .title("------------------------------------------------")
        .meta("table", "Table 1")
        .rowKey("case")
        .colKey("")
        .table(false);

    struct Case
    {
        const char *name;
        int paper;
        SyncPolicy pol;
        SetupFn setup;
    };
    const std::vector<Case> cases = {
        {"UNC", 2, SyncPolicy::UNC, nullptr},
        {"INV to cached exclusive", 0, SyncPolicy::INV,
         // proc 0 takes ownership
         [](System &sys, Addr a) { run(sys, storeOnce(sys.proc(0), a)); }},
        {"INV to remote exclusive", 4, SyncPolicy::INV,
         // remote owner
         [](System &sys, Addr a) { run(sys, storeOnce(sys.proc(5), a)); }},
        {"INV to remote shared", 3, SyncPolicy::INV,
         // remote shared copies
         [](System &sys, Addr a) {
             run(sys, loadOnce(sys.proc(5), a));
             run(sys, loadOnce(sys.proc(6), a));
         }},
        {"INV to uncached", 2, SyncPolicy::INV, nullptr},
        {"UPD to cached", 3, SyncPolicy::UPD,
         // a remote cached copy
         [](System &sys, Addr a) { run(sys, loadOnce(sys.proc(5), a)); }},
        {"UPD to uncached", 2, SyncPolicy::UPD, nullptr},
    };
    for (const Case &c : cases) {
        ex.point(c.name, "", ex.configFor(c.pol),
                 [name = c.name, paper = c.paper,
                  setup = c.setup](System &sys) {
            return directedCase(sys, name, paper, setup);
        });
    }

    // Supplementary: the drop_copy effect the paper derives from these
    // counts (a dropped exclusive line turns the next store from a
    // 4-message into a 2-message transaction).
    ex.point("INV remote exclusive + drop_copy", "",
             ex.configFor(SyncPolicy::INV), [](System &sys) {
        Addr a = sys.allocSyncAt(9);
        run(sys, storeOnce(sys.proc(5), a));
        run(sys, dropOnce(sys.proc(5), a));
        RunMetrics m;
        int chain = measure(sys, a, &m);
        PointResult res;
        res.value = chain;
        res.metrics = m;
        res.fields.set("paper", 2).set("measured", chain);
        res.text = csprintf("\nwith drop_copy after remote exclusive: "
                            "store takes %d serialized messages (vs 4 "
                            "without)\n", chain);
        return res;
    });

    const std::vector<PointResult> &results =
        ex.run(parseJobsFlag(argc, argv));

    bool all_match = true;
    for (std::size_t i = 0; i < cases.size(); ++i)
        all_match &= static_cast<int>(results[i].value) == cases[i].paper;
    std::printf("\n%s\n", all_match ? "ALL ROWS MATCH TABLE 1"
                                    : "SOME ROWS MISMATCH");
    return all_match ? 0 : 1;
}
