/**
 * @file
 * Regenerates Table 1 of the paper: serialized network messages for
 * stores to shared memory with different coherence policies, measured
 * from directed single-store experiments on the simulator (not computed
 * analytically). The "paper" column lists the published counts.
 */

#include <cstdio>

#include "cpu/system.hh"
#include "exp/experiment.hh"
#include "sim/logging.hh"

using namespace dsm;

namespace {

Task
storeOnce(Proc &p, Addr a)
{
    co_await p.store(a, 99);
}

Task
loadOnce(Proc &p, Addr a)
{
    co_await p.load(a);
}

Task
dropOnce(Proc &p, Addr a)
{
    co_await p.dropCopy(a);
}

Task
tasOnce(Proc &p, Addr a)
{
    co_await p.testAndSet(a);
}

Task
faaOnce(Proc &p, Addr a)
{
    co_await p.fetchAdd(a, 1);
}

Task
casOnce(Proc &p, Addr a, Word expected, Word desired)
{
    co_await p.cas(a, expected, desired);
}

Task
llscOnce(Proc &p, Addr a)
{
    OpResult r = co_await p.ll(a);
    co_await p.sc(a, r.value + 1);
}

Task
llsScsOnce(Proc &p, Addr a)
{
    OpResult r = co_await p.llSerial(a);
    co_await p.scSerial(a, r.value + 1, r.serial);
}

void
run(System &sys, Task t)
{
    sys.spawn(std::move(t));
    RunResult r = sys.run();
    if (!r.completed)
        dsm_fatal("table1 experiment deadlocked");
    sys.reapTasks();
}

/**
 * Measure the serialized-message chain of a store by proc 0. The
 * registry snapshot/diff isolates the network traffic of the measured
 * store from the setup traffic (mesh counters are not reset by
 * clearStats).
 */
int
measure(System &sys, Addr a, RunMetrics *metrics = nullptr)
{
    sys.clearStats();
    StatsRegistry::Snapshot before = sys.registry().snapshot();
    run(sys, storeOnce(sys.proc(0), a));
    if (metrics != nullptr) {
        *metrics = collectRunMetrics(sys);
        StatsRegistry::Snapshot delta =
            StatsRegistry::diff(sys.registry().snapshot(), before);
        metrics->messages = delta["net.messages"];
        metrics->flits = delta["net.flits"];
    }
    return static_cast<int>(sys.stats().chain_length.max());
}

/** Setup traffic issued before the measured store. */
using SetupFn = void (*)(System &, Addr);

/** Harvest one directed case: run setup, measure, render the row. */
PointResult
directedCase(System &sys, const char *name, int paper, SetupFn setup)
{
    Addr a = sys.allocSyncAt(9);
    if (setup != nullptr)
        setup(sys, a);
    RunMetrics m;
    int measured = measure(sys, a, &m);
    PointResult res;
    res.value = measured;
    res.metrics = m;
    res.fields.set("paper", paper).set("measured", measured);
    res.text = csprintf("%-28s %8d %10d%s\n", name, paper, measured,
                        paper == measured ? "" : "   <-- MISMATCH");
    return res;
}

/** Pre-state of the sync block before the validated primitive runs. */
enum class Pre { UNCACHED, REMOTE_SHARED, REMOTE_EXCLUSIVE };

/** Primitive sequence exercised by one chain-validation point. */
enum class Prim { TAS, FAA, CAS, LLSC, LLS_SCS };

/**
 * Chain-validation point: establish the pre-state, issue the primitive
 * from proc 0, and let the transaction tracer compare every completed
 * operation's observed serialized-message chain against Table 1. The
 * divergence count is harvested by the Experiment's txn-trace wrapper.
 */
PointResult
validateCase(System &sys, Prim prim, Pre pre)
{
    Addr a = sys.allocSyncAt(9);
    sys.writeInit(a, 7);
    switch (pre) {
      case Pre::UNCACHED:
        break;
      case Pre::REMOTE_SHARED:
        run(sys, loadOnce(sys.proc(5), a));
        run(sys, loadOnce(sys.proc(6), a));
        break;
      case Pre::REMOTE_EXCLUSIVE:
        run(sys, storeOnce(sys.proc(5), a));
        break;
    }
    switch (prim) {
      case Prim::TAS:
        run(sys, tasOnce(sys.proc(0), a));
        break;
      case Prim::FAA:
        run(sys, faaOnce(sys.proc(0), a));
        break;
      case Prim::CAS: {
        // One failing then one succeeding compare_and_swap, so both
        // outcomes of the INVd/INVs variants are validated.
        Word cur = sys.debugRead(a);
        run(sys, casOnce(sys.proc(0), a, cur + 1, 123));
        cur = sys.debugRead(a);
        run(sys, casOnce(sys.proc(0), a, cur, 123));
        break;
      }
      case Prim::LLSC:
        run(sys, llscOnce(sys.proc(0), a));
        break;
      case Prim::LLS_SCS:
        run(sys, llsScsOnce(sys.proc(0), a));
        break;
    }
    PointResult res;
    res.metrics = collectRunMetrics(sys);
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    Experiment ex = Experiment::paper64("table1_serialized_messages");
    ex.title("Table 1: serialized network messages for stores to "
             "shared memory")
        .title("")
        .title(csprintf("%-28s %8s %10s", "case", "paper", "measured"))
        .title("------------------------------------------------")
        .meta("table", "Table 1")
        .rowKey("case")
        .colKey("")
        .table(false)
        .traceTxns(true);

    struct Case
    {
        const char *name;
        int paper;
        SyncPolicy pol;
        SetupFn setup;
    };
    const std::vector<Case> cases = {
        {"UNC", 2, SyncPolicy::UNC, nullptr},
        {"INV to cached exclusive", 0, SyncPolicy::INV,
         // proc 0 takes ownership
         [](System &sys, Addr a) { run(sys, storeOnce(sys.proc(0), a)); }},
        {"INV to remote exclusive", 4, SyncPolicy::INV,
         // remote owner
         [](System &sys, Addr a) { run(sys, storeOnce(sys.proc(5), a)); }},
        {"INV to remote shared", 3, SyncPolicy::INV,
         // remote shared copies
         [](System &sys, Addr a) {
             run(sys, loadOnce(sys.proc(5), a));
             run(sys, loadOnce(sys.proc(6), a));
         }},
        {"INV to uncached", 2, SyncPolicy::INV, nullptr},
        {"UPD to cached", 3, SyncPolicy::UPD,
         // a remote cached copy
         [](System &sys, Addr a) { run(sys, loadOnce(sys.proc(5), a)); }},
        {"UPD to uncached", 2, SyncPolicy::UPD, nullptr},
    };
    for (const Case &c : cases) {
        ex.point(c.name, "", ex.configFor(c.pol),
                 [name = c.name, paper = c.paper,
                  setup = c.setup](System &sys) {
            return directedCase(sys, name, paper, setup);
        });
    }

    // Supplementary: the drop_copy effect the paper derives from these
    // counts (a dropped exclusive line turns the next store from a
    // 4-message into a 2-message transaction).
    ex.point("INV remote exclusive + drop_copy", "",
             ex.configFor(SyncPolicy::INV), [](System &sys) {
        Addr a = sys.allocSyncAt(9);
        run(sys, storeOnce(sys.proc(5), a));
        run(sys, dropOnce(sys.proc(5), a));
        RunMetrics m;
        int chain = measure(sys, a, &m);
        PointResult res;
        res.value = chain;
        res.metrics = m;
        res.fields.set("paper", 2).set("measured", chain);
        res.text = csprintf("\nwith drop_copy after remote exclusive: "
                            "store takes %d serialized messages (vs 4 "
                            "without)\n", chain);
        return res;
    });

    // Chain validation: every implementation x primitive x pre-state
    // case below runs with the transaction tracer comparing observed
    // chains against the analytic Table 1 counts per transaction.
    struct Validation
    {
        const char *label;
        SyncPolicy pol;
        CasVariant var;
        Prim prim;
        Pre pre;
    };
    std::vector<Validation> vals;
    for (Prim prim : {Prim::TAS, Prim::FAA, Prim::CAS, Prim::LLSC,
                      Prim::LLS_SCS})
        for (SyncPolicy pol : {SyncPolicy::UNC, SyncPolicy::UPD})
            for (Pre pre : pol == SyncPolicy::UNC
                               ? std::vector<Pre>{Pre::UNCACHED}
                               : std::vector<Pre>{Pre::UNCACHED,
                                                  Pre::REMOTE_SHARED})
                vals.push_back({"", pol, CasVariant::PLAIN, prim, pre});
    for (Prim prim : {Prim::TAS, Prim::FAA, Prim::CAS, Prim::LLSC})
        for (Pre pre : {Pre::UNCACHED, Pre::REMOTE_SHARED,
                        Pre::REMOTE_EXCLUSIVE})
            vals.push_back({"", SyncPolicy::INV, CasVariant::PLAIN,
                            prim, pre});
    for (CasVariant var : {CasVariant::DENY, CasVariant::SHARE})
        for (Pre pre : {Pre::UNCACHED, Pre::REMOTE_SHARED,
                        Pre::REMOTE_EXCLUSIVE})
            vals.push_back({"", SyncPolicy::INV, var, Prim::CAS, pre});

    const char *prim_names[] = {"TAS", "FAA", "CAS", "LL/SC", "LLS/SCS"};
    const char *pre_names[] = {"uncached", "remote shared",
                               "remote exclusive"};
    for (const Validation &v : vals) {
        Config cfg = ex.configFor(v.pol);
        cfg.sync.cas_variant = v.var;
        std::string impl = v.var == CasVariant::PLAIN
                               ? toString(v.pol)
                               : toString(v.var);
        std::string row = csprintf(
            "validate %s %s (%s)", impl.c_str(),
            prim_names[static_cast<int>(v.prim)],
            pre_names[static_cast<int>(v.pre)]);
        ex.point(row, "", cfg, [prim = v.prim, pre = v.pre](System &sys) {
            return validateCase(sys, prim, pre);
        });
    }

    ex.seed(parseSeedFlag(argc, argv));
    const std::vector<PointResult> &results =
        ex.run(parseJobsFlag(argc, argv));

    bool all_match = true;
    for (std::size_t i = 0; i < cases.size(); ++i)
        all_match &= static_cast<int>(results[i].value) == cases[i].paper;
    std::printf("\n%s\n", all_match ? "ALL ROWS MATCH TABLE 1"
                                    : "SOME ROWS MISMATCH");

    std::uint64_t divergences = 0, traced = 0;
    for (const PointResult &r : results) {
        divergences += r.txn_divergences;
        traced += r.txn_mismatches == 0 ? 0 : 1;
    }
    std::printf("chain validator: %llu divergences across %zu points "
                "(%llu points with phase-sum mismatches)\n",
                (unsigned long long)divergences, results.size(),
                (unsigned long long)traced);
    bool chains_ok = divergences == 0 && traced == 0;
    return all_match && chains_ok ? 0 : 1;
}
