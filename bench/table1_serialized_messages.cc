/**
 * @file
 * Regenerates Table 1 of the paper: serialized network messages for
 * stores to shared memory with different coherence policies, measured
 * from directed single-store experiments on the simulator (not computed
 * analytically). The "paper" column lists the published counts.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace dsmbench;

namespace {

Task
storeOnce(Proc &p, Addr a)
{
    co_await p.store(a, 99);
}

Task
loadOnce(Proc &p, Addr a)
{
    co_await p.load(a);
}

Task
dropOnce(Proc &p, Addr a)
{
    co_await p.dropCopy(a);
}

void
run(System &sys, Task t)
{
    sys.spawn(std::move(t));
    RunResult r = sys.run();
    if (!r.completed)
        dsm_fatal("table1 experiment deadlocked");
    sys.reapTasks();
}

/** Measure the serialized-message chain of a store by proc 0. */
int
measure(System &sys, Addr a)
{
    sys.stats() = SysStats{};
    run(sys, storeOnce(sys.proc(0), a));
    return static_cast<int>(sys.stats().chain_length.max());
}

struct Row
{
    const char *name;
    int paper;
    int measured;
};

} // namespace

int
main()
{
    std::vector<Row> rows;

    {
        System sys(paperConfig(SyncPolicy::UNC));
        Addr a = sys.allocSyncAt(9);
        rows.push_back({"UNC", 2, measure(sys, a)});
    }
    {
        System sys(paperConfig(SyncPolicy::INV));
        Addr a = sys.allocSyncAt(9);
        run(sys, storeOnce(sys.proc(0), a)); // proc 0 takes ownership
        rows.push_back({"INV to cached exclusive", 0, measure(sys, a)});
    }
    {
        System sys(paperConfig(SyncPolicy::INV));
        Addr a = sys.allocSyncAt(9);
        run(sys, storeOnce(sys.proc(5), a)); // remote owner
        rows.push_back({"INV to remote exclusive", 4, measure(sys, a)});
    }
    {
        System sys(paperConfig(SyncPolicy::INV));
        Addr a = sys.allocSyncAt(9);
        run(sys, loadOnce(sys.proc(5), a));
        run(sys, loadOnce(sys.proc(6), a)); // remote shared copies
        rows.push_back({"INV to remote shared", 3, measure(sys, a)});
    }
    {
        System sys(paperConfig(SyncPolicy::INV));
        Addr a = sys.allocSyncAt(9);
        rows.push_back({"INV to uncached", 2, measure(sys, a)});
    }
    {
        System sys(paperConfig(SyncPolicy::UPD));
        Addr a = sys.allocSyncAt(9);
        run(sys, loadOnce(sys.proc(5), a)); // a remote cached copy
        rows.push_back({"UPD to cached", 3, measure(sys, a)});
    }
    {
        System sys(paperConfig(SyncPolicy::UPD));
        Addr a = sys.allocSyncAt(9);
        rows.push_back({"UPD to uncached", 2, measure(sys, a)});
    }

    std::printf("Table 1: serialized network messages for stores to "
                "shared memory\n\n");
    std::printf("%-28s %8s %10s\n", "case", "paper", "measured");
    std::printf("------------------------------------------------\n");
    bool all_match = true;
    for (const Row &r : rows) {
        std::printf("%-28s %8d %10d%s\n", r.name, r.paper, r.measured,
                    r.paper == r.measured ? "" : "   <-- MISMATCH");
        all_match &= r.paper == r.measured;
    }

    // Supplementary: the drop_copy effect the paper derives from these
    // counts (a dropped exclusive line turns the next store from a
    // 4-message into a 2-message transaction).
    {
        System sys(paperConfig(SyncPolicy::INV));
        Addr a = sys.allocSyncAt(9);
        run(sys, storeOnce(sys.proc(5), a));
        run(sys, dropOnce(sys.proc(5), a));
        std::printf("\nwith drop_copy after remote exclusive: store "
                    "takes %d serialized messages (vs 4 without)\n",
                    measure(sys, a));
    }

    std::printf("\n%s\n", all_match ? "ALL ROWS MATCH TABLE 1"
                                    : "SOME ROWS MISMATCH");
    return all_match ? 0 : 1;
}
