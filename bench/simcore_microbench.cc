/**
 * @file
 * Host-performance microbenchmarks (google-benchmark) of the simulation
 * core: raw event-queue throughput and end-to-end simulated-events/sec
 * for a representative coherence workload. These measure the simulator
 * itself, not the simulated machine.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cpu/system.hh"
#include "sync/lockfree_counter.hh"

using namespace dsm;

namespace {

void
BM_EventQueueSchedule(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1024; ++i)
            eq.schedule(static_cast<Tick>(i % 64), [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueSchedule);

Config
benchConfig(int procs)
{
    Config cfg;
    cfg.machine.num_procs = procs;
    cfg.machine.mesh_x = procs == 64 ? 8 : 4;
    cfg.machine.mesh_y = procs == 64 ? 8 : procs / 4;
    return cfg;
}

void
BM_ContendedFetchAdd(benchmark::State &state)
{
    int procs = static_cast<int>(state.range(0));
    std::uint64_t events = 0;
    for (auto _ : state) {
        System sys(benchConfig(procs));
        LockFreeCounter counter(sys, Primitive::FAP);
        for (NodeId n = 0; n < procs; ++n) {
            sys.spawn([](Proc &p, LockFreeCounter &c) -> Task {
                for (int i = 0; i < 20; ++i)
                    co_await c.fetchInc(p);
            }(sys.proc(n), counter));
        }
        RunResult r = sys.run();
        events += r.events;
    }
    state.SetItemsProcessed(static_cast<int64_t>(events));
    state.SetLabel("simulated events/sec");
}
BENCHMARK(BM_ContendedFetchAdd)->Arg(16)->Arg(64);

void
BM_MeshMessageThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        MachineConfig mc;
        Mesh mesh(eq, mc);
        std::uint64_t delivered = 0;
        for (NodeId n = 0; n < mc.num_procs; ++n)
            mesh.setHandler(n, [&delivered](const Msg &) {
                ++delivered;
            });
        for (int i = 0; i < 2048; ++i) {
            Msg m;
            m.type = MsgType::GET_S;
            m.src = i % 64;
            m.dst = (i * 7) % 64;
            mesh.send(m);
        }
        eq.run();
        benchmark::DoNotOptimize(delivered);
    }
    state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_MeshMessageThroughput);

} // namespace

// Like BENCHMARK_MAIN(), but defaults the JSON side-output to
// BENCH_simcore_microbench.json (in $DSM_BENCH_DIR if set) so this
// binary matches the machine-readable-output convention of the
// simulated-machine benches. Explicit --benchmark_out flags win.
// Accepts and ignores the sweep binaries' --jobs/-j and --seed flags so
// run_all.sh can pass one job count and seed to every bench uniformly
// (host-performance numbers have no simulated seed to plumb).
int
main(int argc, char **argv)
{
    bool has_out = false;
    std::vector<char *> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 ||
            std::strcmp(argv[i], "-j") == 0 ||
            std::strcmp(argv[i], "--seed") == 0) {
            i += i + 1 < argc; // skip the value too
            continue;
        }
        if (std::strncmp(argv[i], "--jobs=", 7) == 0 ||
            std::strncmp(argv[i], "--seed=", 7) == 0)
            continue;
        has_out |= std::strncmp(argv[i], "--benchmark_out=", 16) == 0;
        args.push_back(argv[i]);
    }

    const char *dir = std::getenv("DSM_BENCH_DIR");
    std::string d = dir != nullptr && dir[0] != '\0' ? dir : ".";
    std::string out_flag =
        "--benchmark_out=" + d + "/BENCH_simcore_microbench.json";
    std::string fmt_flag = "--benchmark_out_format=json";

    if (!has_out) {
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }
    int args_argc = static_cast<int>(args.size());
    benchmark::Initialize(&args_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_argc, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
