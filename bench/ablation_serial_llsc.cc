/**
 * @file
 * Ablation for Section 3.1's preferred reservation scheme: MCS-lock
 * counter throughput with conventional in-memory LL/SC versus
 * serial-number LL/SC (whose bare store_conditional saves one memory
 * access per uncontended release -- the paper's motivating example).
 */

#include <cstdio>

#include "bench_util.hh"
#include "sync/mcs_lock.hh"

using namespace dsmbench;

namespace {

struct Point
{
    double cycles_per_update;
    std::uint64_t messages;
    RunMetrics metrics;
};

Point
runMcsCounter(SyncPolicy pol, bool serial, int contention)
{
    Config cfg = paperConfig(pol);
    System sys(cfg);
    McsLock lock(sys, Primitive::LLSC, serial);
    Addr counter = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    SyncBarrier barrier(sys, sys.numProcs());
    const int phases = contention > 1 ? (256 / contention < 6
                                             ? 6
                                             : 256 / contention)
                                      : 96;
    std::uint64_t updates = 0;
    Tick t0 = sys.now();
    for (NodeId n = 0; n < sys.numProcs(); ++n) {
        sys.spawn([](Proc &p, McsLock &l, Addr c, SyncBarrier &b,
                     int nphases, int cont, std::uint64_t *ups) -> Task {
            int procs = p.sys().numProcs();
            for (int ph = 0; ph < nphases; ++ph) {
                bool active = cont <= 1 ? ph % procs == p.id()
                                        : p.id() < cont;
                if (active) {
                    co_await l.acquire(p);
                    Word v = (co_await p.load(c)).value;
                    co_await p.store(c, v + 1);
                    co_await l.release(p);
                    ++*ups;
                }
                co_await b.arrive();
            }
        }(sys.proc(n), lock, counter, barrier, phases, contention,
          &updates));
    }
    RunResult r = sys.run();
    if (!r.completed)
        dsm_fatal("serial-llsc ablation deadlocked");
    if (sys.debugRead(counter) != updates)
        dsm_fatal("serial-llsc ablation lost updates");
    Point pt;
    pt.cycles_per_update = static_cast<double>(sys.now() - t0) /
                           static_cast<double>(updates);
    pt.messages = sys.mesh().stats().messages;
    pt.metrics = collectRunMetrics(sys);
    return pt;
}

} // namespace

int
main()
{
    std::printf("Ablation: MCS-lock counter, in-memory LL/SC vs "
                "serial-number LL/SC\n(bare-SC release, Section 3.1), "
                "p=64\n\n");
    std::printf("%-4s %-18s %12s %12s %12s %12s\n", "pol", "variant",
                "c=1", "c=8", "c=64", "msgs(c=1)");
    BenchReport rep("ablation_serial_llsc");
    rep.meta("app", "MCS counter");
    addMachineMeta(rep, paperConfig());
    for (SyncPolicy pol : {SyncPolicy::UNC, SyncPolicy::UPD}) {
        for (bool serial : {false, true}) {
            const char *variant = serial ? "LLSC+serial" : "LLSC";
            Point pts[3];
            const int cs[] = {1, 8, 64};
            for (int i = 0; i < 3; ++i) {
                pts[i] = runMcsCounter(pol, serial, cs[i]);
                rep.row()
                    .set("policy", toString(pol))
                    .set("variant", variant)
                    .set("contention", cs[i])
                    .set("avg_cycles_per_update",
                         pts[i].cycles_per_update)
                    .metrics(pts[i].metrics);
            }
            std::printf("%-4s %-18s %12.1f %12.1f %12.1f %12llu\n",
                        toString(pol), variant,
                        pts[0].cycles_per_update,
                        pts[1].cycles_per_update,
                        pts[2].cycles_per_update,
                        static_cast<unsigned long long>(
                            pts[0].messages));
        }
    }
    writeReport(rep);
    std::printf("\nThe serial variant's release is a single bare SC: "
                "fewer messages and\nlower latency per uncontended "
                "acquire/release pair.\n");
    return 0;
}
