/**
 * @file
 * Ablation for Section 3.1's preferred reservation scheme: MCS-lock
 * counter throughput with conventional in-memory LL/SC versus
 * serial-number LL/SC (whose bare store_conditional saves one memory
 * access per uncontended release -- the paper's motivating example).
 */

#include <cstdio>

#include "cpu/system.hh"
#include "exp/experiment.hh"
#include "sim/logging.hh"
#include "sync/mcs_lock.hh"

using namespace dsm;

namespace {

struct McsPoint
{
    double cycles_per_update;
    std::uint64_t messages;
    RunMetrics metrics;
};

McsPoint
runMcsCounter(System &sys, bool serial, int contention)
{
    McsLock lock(sys, Primitive::LLSC, serial);
    Addr counter = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    SyncBarrier barrier(sys, sys.numProcs());
    const int phases = contention > 1 ? (256 / contention < 6
                                             ? 6
                                             : 256 / contention)
                                      : 96;
    std::uint64_t updates = 0;
    Tick t0 = sys.now();
    for (NodeId n = 0; n < sys.numProcs(); ++n) {
        sys.spawn([](Proc &p, McsLock &l, Addr c, SyncBarrier &b,
                     int nphases, int cont, std::uint64_t *ups) -> Task {
            int procs = p.sys().numProcs();
            for (int ph = 0; ph < nphases; ++ph) {
                bool active = cont <= 1 ? ph % procs == p.id()
                                        : p.id() < cont;
                if (active) {
                    co_await l.acquire(p);
                    Word v = (co_await p.load(c)).value;
                    co_await p.store(c, v + 1);
                    co_await l.release(p);
                    ++*ups;
                }
                co_await b.arrive();
            }
        }(sys.proc(n), lock, counter, barrier, phases, contention,
          &updates));
    }
    RunResult r = sys.run();
    if (!r.completed)
        dsm_fatal("serial-llsc ablation deadlocked");
    if (sys.debugRead(counter) != updates)
        dsm_fatal("serial-llsc ablation lost updates");
    McsPoint pt;
    pt.cycles_per_update = static_cast<double>(sys.now() - t0) /
                           static_cast<double>(updates);
    pt.messages = sys.mesh().stats().messages;
    pt.metrics = collectRunMetrics(sys);
    return pt;
}

} // namespace

int
main(int argc, char **argv)
{
    Experiment ex = Experiment::paper64("ablation_serial_llsc");
    ex.title("Ablation: MCS-lock counter, in-memory LL/SC vs "
             "serial-number LL/SC")
        .title("(bare-SC release, Section 3.1), p=64")
        .title("")
        .title(csprintf("%-4s %-18s %12s %12s %12s %12s", "pol",
                        "variant", "c=1", "msgs(c=1)", "c=8", "c=64"))
        .meta("app", "MCS counter")
        .rowKey("")
        .colKey("")
        .table(false);

    for (SyncPolicy pol : {SyncPolicy::UNC, SyncPolicy::UPD}) {
        for (bool serial : {false, true}) {
            const char *variant = serial ? "LLSC+serial" : "LLSC";
            std::string row =
                csprintf("%s %s", toString(pol), variant);
            for (int c : {1, 8, 64}) {
                ex.point(row, csprintf("c=%d", c), ex.configFor(pol),
                         [pol, serial, variant, c](System &sys) {
                    McsPoint pt = runMcsCounter(sys, serial, c);
                    PointResult res;
                    res.value = pt.cycles_per_update;
                    res.metrics = pt.metrics;
                    res.fields.set("policy", toString(pol))
                        .set("variant", variant)
                        .set("contention", c)
                        .set("avg_cycles_per_update",
                             pt.cycles_per_update);
                    if (c == 1) {
                        res.text = csprintf(
                            "%-4s %-18s %12.1f %12llu", toString(pol),
                            variant, pt.cycles_per_update,
                            static_cast<unsigned long long>(
                                pt.messages));
                    } else {
                        res.text = csprintf(" %12.1f",
                                            pt.cycles_per_update);
                        if (c == 64)
                            res.text += "\n";
                    }
                    return res;
                });
            }
        }
    }
    ex.seed(parseSeedFlag(argc, argv));
    ex.run(parseJobsFlag(argc, argv));
    std::printf("\nThe serial variant's release is a single bare SC: "
                "fewer messages and\nlower latency per uncontended "
                "acquire/release pair.\n");
    return 0;
}
