/**
 * @file
 * Regenerates Figure 3: average time per counter update for the
 * lock-free counter application (LL/SC and CAS simulate fetch_and_Phi).
 */

#include "fig_counter_common.hh"

int
main(int argc, char **argv)
{
    dsmbench::runFigure("fig3_lockfree_counter", "Figure 3",
                        dsm::CounterKind::LOCK_FREE,
                        dsm::parseJobsFlag(argc, argv),
                        dsm::parseSeedFlag(argc, argv));
    return 0;
}
