/**
 * @file
 * Ablation: barrier implementations on the 64-node machine. The paper's
 * Transitive Closure application uses "the scalable tree barrier [20]";
 * this bench quantifies why, comparing the MCS-style tree barrier
 * (loads/stores only) against a central sense-reversing barrier built
 * on each primitive, under each coherence policy for the central
 * barrier's counter.
 */

#include <cstdio>

#include "cpu/system.hh"
#include "exp/experiment.hh"
#include "sim/logging.hh"
#include "sync/central_barrier.hh"
#include "sync/tree_barrier.hh"

using namespace dsm;

namespace {

constexpr int ROUNDS = 20;

double
runTree(System &sys)
{
    TreeBarrier bar(sys, sys.numProcs());
    Tick t0 = sys.now();
    for (NodeId n = 0; n < sys.numProcs(); ++n) {
        sys.spawn([](Proc &p, TreeBarrier &b) -> Task {
            for (int r = 0; r < ROUNDS; ++r)
                co_await b.arrive(p);
        }(sys.proc(n), bar));
    }
    RunResult r = sys.run();
    if (!r.completed || bar.roundsCompleted() != ROUNDS)
        dsm_fatal("tree barrier ablation failed");
    return static_cast<double>(sys.now() - t0) / ROUNDS;
}

double
runCentral(System &sys, SyncPolicy pol, Primitive prim)
{
    CentralBarrier bar(sys, prim, sys.numProcs());
    Tick t0 = sys.now();
    for (NodeId n = 0; n < sys.numProcs(); ++n) {
        sys.spawn([](Proc &p, CentralBarrier &b) -> Task {
            for (int r = 0; r < ROUNDS; ++r)
                co_await b.arrive(p);
        }(sys.proc(n), bar));
    }
    RunResult r = sys.run();
    if (!r.completed || bar.roundsCompleted() != ROUNDS)
        dsm_fatal("central barrier ablation failed (%s %s)",
                  toString(pol), toString(prim));
    return static_cast<double>(sys.now() - t0) / ROUNDS;
}

} // namespace

int
main(int argc, char **argv)
{
    Experiment ex = Experiment::paper64("ablation_barrier");
    ex.title("Ablation: barrier episode cost on 64 procs "
             "(cycles per barrier round)")
        .title("")
        .meta("rounds", ROUNDS)
        .rowKey("")
        .colKey("")
        .table(false);

    ex.point("tree", "", ex.configFor(SyncPolicy::INV),
             [](System &sys) {
        double cycles = runTree(sys);
        PointResult res;
        res.value = cycles;
        res.metrics = collectRunMetrics(sys);
        res.fields.set("barrier", "tree")
            .set("cycles_per_round", cycles);
        res.text = csprintf("MCS tree barrier (loads/stores only): "
                            "%10.1f\n\n", cycles);
        return res;
    });

    bool first_central = true;
    for (SyncPolicy pol :
         {SyncPolicy::UNC, SyncPolicy::INV, SyncPolicy::UPD}) {
        for (Primitive prim :
             {Primitive::FAP, Primitive::LLSC, Primitive::CAS}) {
            bool first_col = prim == Primitive::FAP;
            bool last_col = prim == Primitive::CAS;
            bool header = first_central;
            first_central = false;
            ex.point(toString(pol), toString(prim), ex.configFor(pol),
                     [pol, prim, header, first_col,
                      last_col](System &sys) {
                double cycles = runCentral(sys, pol, prim);
                PointResult res;
                res.value = cycles;
                res.metrics = collectRunMetrics(sys);
                res.fields.set("barrier", "central")
                    .set("policy", toString(pol))
                    .set("prim", toString(prim))
                    .set("cycles_per_round", cycles);
                if (header)
                    res.text = csprintf(
                        "central sense-reversing barrier:\n"
                        "%-6s %10s %10s %10s\n", "", "FAP", "LLSC",
                        "CAS");
                if (first_col)
                    res.text += csprintf("%-6s", toString(pol));
                res.text += csprintf(" %10.1f", cycles);
                if (last_col)
                    res.text += "\n";
                return res;
            });
        }
    }
    ex.seed(parseSeedFlag(argc, argv));
    ex.run(parseJobsFlag(argc, argv));
    std::printf("\nThe tree barrier's point-to-point flags avoid the "
                "hot spot that the\ncentral counter and sense word "
                "create at 64 processors.\n");
    return 0;
}
