/**
 * @file
 * Ablation: barrier implementations on the 64-node machine. The paper's
 * Transitive Closure application uses "the scalable tree barrier [20]";
 * this bench quantifies why, comparing the MCS-style tree barrier
 * (loads/stores only) against a central sense-reversing barrier built
 * on each primitive, under each coherence policy for the central
 * barrier's counter.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sync/central_barrier.hh"
#include "sync/tree_barrier.hh"

using namespace dsmbench;

namespace {

constexpr int ROUNDS = 20;

double
runTree(RunMetrics *metrics)
{
    System sys(paperConfig(SyncPolicy::INV));
    TreeBarrier bar(sys, sys.numProcs());
    Tick t0 = sys.now();
    for (NodeId n = 0; n < sys.numProcs(); ++n) {
        sys.spawn([](Proc &p, TreeBarrier &b) -> Task {
            for (int r = 0; r < ROUNDS; ++r)
                co_await b.arrive(p);
        }(sys.proc(n), bar));
    }
    RunResult r = sys.run();
    if (!r.completed || bar.roundsCompleted() != ROUNDS)
        dsm_fatal("tree barrier ablation failed");
    *metrics = collectRunMetrics(sys);
    return static_cast<double>(sys.now() - t0) / ROUNDS;
}

double
runCentral(SyncPolicy pol, Primitive prim, RunMetrics *metrics)
{
    System sys(paperConfig(pol));
    CentralBarrier bar(sys, prim, sys.numProcs());
    Tick t0 = sys.now();
    for (NodeId n = 0; n < sys.numProcs(); ++n) {
        sys.spawn([](Proc &p, CentralBarrier &b) -> Task {
            for (int r = 0; r < ROUNDS; ++r)
                co_await b.arrive(p);
        }(sys.proc(n), bar));
    }
    RunResult r = sys.run();
    if (!r.completed || bar.roundsCompleted() != ROUNDS)
        dsm_fatal("central barrier ablation failed (%s %s)",
                  toString(pol), toString(prim));
    *metrics = collectRunMetrics(sys);
    return static_cast<double>(sys.now() - t0) / ROUNDS;
}

} // namespace

int
main()
{
    std::printf("Ablation: barrier episode cost on 64 procs "
                "(cycles per barrier round)\n\n");
    BenchReport rep("ablation_barrier");
    rep.meta("rounds", ROUNDS);
    addMachineMeta(rep, paperConfig());
    {
        RunMetrics m;
        double cycles = runTree(&m);
        std::printf("MCS tree barrier (loads/stores only): %10.1f\n\n",
                    cycles);
        rep.row()
            .set("barrier", "tree")
            .set("cycles_per_round", cycles)
            .metrics(m);
    }
    std::printf("central sense-reversing barrier:\n");
    std::printf("%-6s %10s %10s %10s\n", "", "FAP", "LLSC", "CAS");
    for (SyncPolicy pol :
         {SyncPolicy::UNC, SyncPolicy::INV, SyncPolicy::UPD}) {
        std::printf("%-6s", toString(pol));
        for (Primitive prim :
             {Primitive::FAP, Primitive::LLSC, Primitive::CAS}) {
            RunMetrics m;
            double cycles = runCentral(pol, prim, &m);
            std::printf(" %10.1f", cycles);
            rep.row()
                .set("barrier", "central")
                .set("policy", toString(pol))
                .set("prim", toString(prim))
                .set("cycles_per_round", cycles)
                .metrics(m);
        }
        std::printf("\n");
    }
    writeReport(rep);
    std::printf("\nThe tree barrier's point-to-point flags avoid the "
                "hot spot that the\ncentral counter and sense word "
                "create at 64 processors.\n");
    return 0;
}
