/**
 * @file
 * Ablation: the paper notes that "backoff serves to greatly reduce
 * contention" for the TTS lock. This bench sweeps the bounded
 * exponential backoff cap under high contention (p=64, c=64) for each
 * policy and reports the average cycles per lock-protected update.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/counter_apps.hh"

using namespace dsmbench;

int
main()
{
    std::printf("Ablation: TTS-lock counter, c=64, backoff cap sweep\n");
    const Tick caps[] = {16, 64, 256, 1024, 4096};

    std::vector<std::string> cols;
    for (Tick cap : caps)
        cols.push_back(csprintf("cap=%llu",
                                static_cast<unsigned long long>(cap)));
    printHeader("", cols);

    BenchReport rep("ablation_backoff");
    rep.meta("app", "TTS counter");
    rep.meta("contention", 64);
    addMachineMeta(rep, paperConfig());

    for (SyncPolicy pol :
         {SyncPolicy::UNC, SyncPolicy::INV, SyncPolicy::UPD}) {
        for (Primitive prim :
             {Primitive::FAP, Primitive::LLSC, Primitive::CAS}) {
            std::string label =
                std::string(toString(pol)) + " " + toString(prim);
            std::vector<double> vals;
            for (Tick cap : caps) {
                Config cfg = paperConfig(pol);
                System sys(cfg);
                CounterAppConfig app;
                app.kind = CounterKind::TTS;
                app.prim = prim;
                app.contention = 64;
                app.phases = 4;
                app.backoff_base = 16;
                app.backoff_cap = cap;
                CounterAppResult r = runCounterApp(sys, app);
                if (!r.completed || !r.correct)
                    dsm_fatal("ablation run failed (%s %s cap=%llu)",
                              toString(pol), toString(prim),
                              static_cast<unsigned long long>(cap));
                vals.push_back(r.avg_cycles_per_update);
                rep.row()
                    .set("impl", label)
                    .set("backoff_cap", static_cast<std::uint64_t>(cap))
                    .set("avg_cycles_per_update",
                         r.avg_cycles_per_update)
                    .metrics(collectRunMetrics(sys));
            }
            printRow(label, vals);
        }
    }
    writeReport(rep);
    return 0;
}
