/**
 * @file
 * Ablation: the paper notes that "backoff serves to greatly reduce
 * contention" for the TTS lock. This bench sweeps the bounded
 * exponential backoff cap under high contention (p=64, c=64) for each
 * policy and reports the average cycles per lock-protected update.
 */

#include "cpu/system.hh"
#include "exp/experiment.hh"
#include "sim/logging.hh"
#include "workloads/counter_apps.hh"

using namespace dsm;

int
main(int argc, char **argv)
{
    Experiment::paper64("ablation_backoff")
        .title("Ablation: TTS-lock counter, c=64, backoff cap sweep")
        .meta("app", "TTS counter")
        .meta("contention", 64)
        .colKey("")
        .impls(applicationMatrix())
        .workload([](System &sys, const ImplCase &impl,
                     const SweepPoint &sp) {
            Tick cap = static_cast<Tick>(sp.value);
            CounterAppConfig app;
            app.kind = CounterKind::TTS;
            app.prim = impl.prim;
            app.contention = 64;
            app.phases = 4;
            app.backoff_base = 16;
            app.backoff_cap = cap;
            CounterAppResult r = runCounterApp(sys, app);
            if (!r.completed || !r.correct)
                dsm_fatal("ablation run failed (%s cap=%llu)",
                          impl.label.c_str(),
                          static_cast<unsigned long long>(cap));
            PointResult res;
            res.value = r.avg_cycles_per_update;
            res.metrics = collectRunMetrics(sys);
            res.fields
                .set("backoff_cap", static_cast<std::uint64_t>(cap))
                .set("avg_cycles_per_update", r.avg_cycles_per_update);
            return res;
        })
        .sweep("cap", {16, 64, 256, 1024, 4096})
        .seed(parseSeedFlag(argc, argv))
        .run(parseJobsFlag(argc, argv));
    return 0;
}
