/**
 * @file
 * Shared helpers for the paper-reproduction benchmark binaries: the
 * implementation matrix of Section 3 (policy x primitive x variant x
 * auxiliary instructions) and plain-text table printing.
 */

#ifndef DSM_BENCH_BENCH_UTIL_HH
#define DSM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "cpu/system.hh"
#include "stats/bench_report.hh"

namespace dsmbench {

using namespace dsm;

/** The paper's simulated machine: 64 nodes on an 8x8 mesh. */
inline Config
paperConfig(SyncPolicy pol = SyncPolicy::INV)
{
    Config cfg;
    cfg.machine.num_procs = 64;
    cfg.machine.mesh_x = 8;
    cfg.machine.mesh_y = 8;
    cfg.sync.policy = pol;
    return cfg;
}

/** One implementation under study: a (primitive, SyncConfig) pair. */
struct ImplCase
{
    std::string label;  ///< e.g. "INV CAS+lx" or "UNC FAP"
    Primitive prim;
    SyncConfig sync;
};

/**
 * The full set of implementations shown in Figures 3-5, grouped as in
 * the paper: UNC bars, then INV bars without/with drop_copy (CAS in the
 * INV, INVd, INVs, and INV+load_exclusive variants), then UPD bars
 * without/with drop_copy.
 */
inline std::vector<ImplCase>
figureImplementations()
{
    std::vector<ImplCase> v;
    auto add = [&v](SyncPolicy pol, Primitive prim, CasVariant var,
                    bool lx, bool dc) {
        SyncConfig sc;
        sc.policy = pol;
        sc.cas_variant = var;
        sc.use_load_exclusive = lx;
        sc.use_drop_copy = dc;
        std::string label = std::string(toString(pol)) + " ";
        if (pol == SyncPolicy::INV && var != CasVariant::PLAIN)
            label = std::string(toString(var)) + " ";
        label += toString(prim);
        if (lx)
            label += "+lx";
        if (dc)
            label += "+dc";
        v.push_back({label, prim, sc});
    };

    // UNC: no caching, so no drop_copy / load_exclusive variants.
    add(SyncPolicy::UNC, Primitive::FAP, CasVariant::PLAIN, false, false);
    add(SyncPolicy::UNC, Primitive::LLSC, CasVariant::PLAIN, false, false);
    add(SyncPolicy::UNC, Primitive::CAS, CasVariant::PLAIN, false, false);

    for (bool dc : {false, true}) {
        add(SyncPolicy::INV, Primitive::FAP, CasVariant::PLAIN, false, dc);
        add(SyncPolicy::INV, Primitive::LLSC, CasVariant::PLAIN, false,
            dc);
        add(SyncPolicy::INV, Primitive::CAS, CasVariant::PLAIN, false, dc);
        add(SyncPolicy::INV, Primitive::CAS, CasVariant::DENY, false, dc);
        add(SyncPolicy::INV, Primitive::CAS, CasVariant::SHARE, false, dc);
        add(SyncPolicy::INV, Primitive::CAS, CasVariant::PLAIN, true, dc);
    }
    for (bool dc : {false, true}) {
        add(SyncPolicy::UPD, Primitive::FAP, CasVariant::PLAIN, false, dc);
        add(SyncPolicy::UPD, Primitive::LLSC, CasVariant::PLAIN, false,
            dc);
        add(SyncPolicy::UPD, Primitive::CAS, CasVariant::PLAIN, false, dc);
    }
    return v;
}

/** The reduced (policy x primitive) matrix used for Figure 6. */
inline std::vector<ImplCase>
applicationImplementations()
{
    std::vector<ImplCase> v;
    for (SyncPolicy pol :
         {SyncPolicy::UNC, SyncPolicy::INV, SyncPolicy::UPD}) {
        for (Primitive prim :
             {Primitive::FAP, Primitive::LLSC, Primitive::CAS}) {
            SyncConfig sc;
            sc.policy = pol;
            std::string label =
                std::string(toString(pol)) + " " + toString(prim);
            v.push_back({label, prim, sc});
        }
    }
    return v;
}

/** Record the simulated-machine shape in a report's meta object. */
inline void
addMachineMeta(BenchReport &rep, const Config &cfg)
{
    rep.meta("procs", cfg.machine.num_procs);
    rep.meta("mesh_x", cfg.machine.mesh_x);
    rep.meta("mesh_y", cfg.machine.mesh_y);
}

/** Write @p rep next to the text output and say where it went. */
inline void
writeReport(const BenchReport &rep)
{
    std::string path = rep.write();
    if (!path.empty())
        std::printf("\nwrote %s\n", path.c_str());
}

/** Print a header row for a sweep table. */
inline void
printHeader(const char *title, const std::vector<std::string> &columns)
{
    std::printf("\n%s\n", title);
    std::printf("%-16s", "impl");
    for (const std::string &c : columns)
        std::printf(" %10s", c.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < 16 + 11 * columns.size(); ++i)
        std::printf("-");
    std::printf("\n");
}

/** Print one row of numbers. */
inline void
printRow(const std::string &label, const std::vector<double> &values)
{
    std::printf("%-16s", label.c_str());
    for (double v : values)
        std::printf(" %10.1f", v);
    std::printf("\n");
}

} // namespace dsmbench

#endif // DSM_BENCH_BENCH_UTIL_HH
