/**
 * @file
 * Randomized fault-injection campaign: the Figure 6 implementation
 * matrix (INV/UPD/UNC x FAP/LL-SC/CAS) under the standard fault mix,
 * across many machine seeds. Every point runs the lock-free counter
 * under contention with message jitter, reservation drops, forced
 * evictions, and extra NACK rounds, then asserts the tier-1 protocol
 * invariants: the run completes, the counter's final value is exact,
 * checkCoherence() finds no violation, and checkFaultAccounting()
 * reconciles the injected faults with the observed NACKs and retries.
 *
 * Usage: fault_sweep [--seeds K] [--seed BASE] [--jobs N]
 *
 * The campaign uses machine seeds BASE..BASE+K-1; the fault stream of
 * each point derives from its machine seed, so every point exercises a
 * different schedule and any failure reproduces from its row's "seed"
 * field alone. On failure a WATCHDOG_fault_sweep_<point-index>_
 * <impl>_<seed>.txt diagnosis dump is written next to
 * BENCH_fault_sweep.json (the point index keeps dumps collision-free
 * under --jobs N and repeated impl/seed combinations).
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "cpu/system.hh"
#include "exp/experiment.hh"
#include "fault/fault.hh"
#include "proto/checker.hh"
#include "sim/logging.hh"
#include "workloads/counter_apps.hh"

using namespace dsm;

namespace {

int
parseSeedsFlag(int argc, char **argv, int fallback)
{
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        const char *v = nullptr;
        if (std::strncmp(a, "--seeds=", 8) == 0)
            v = a + 8;
        else if (std::strcmp(a, "--seeds") == 0 && i + 1 < argc)
            v = argv[i + 1];
        if (v != nullptr) {
            char *end = nullptr;
            long n = std::strtol(v, &end, 10);
            if (end == v || *end != '\0' || n < 1)
                dsm_fatal("--seeds expects a positive integer, got "
                          "'%s'", v);
            return static_cast<int>(n);
        }
    }
    return fallback;
}

std::string
fileLabel(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        if (c == ' ' || c == '+' || c == '/')
            c = '_';
    return out;
}

struct Failure
{
    std::size_t index;
    std::string impl;
    std::uint64_t seed;
    std::string report;
};

} // namespace

int
main(int argc, char **argv)
{
    int jobs = parseJobsFlag(argc, argv);
    int nseeds = parseSeedsFlag(argc, argv, 50);
    std::uint64_t base = parseSeedFlag(argc, argv);
    if (base == 0)
        base = seedFromEnv();
    if (base == 0)
        base = 1;
    // Seeds are assigned per point (base + k); consume the global
    // override so Experiment::run() does not flatten them again.
    unsetenv("DSM_SEED");

    // The standard mix unless the caller overrides via DSM_FAULTS.
    FaultConfig fc = faultConfigFromEnv();
    if (!fc.enabled)
        fc.parse("default");

    Config cfg0;
    cfg0.machine.num_procs = 16;
    cfg0.machine.mesh_x = 4;
    cfg0.machine.mesh_y = 4;
    // A generous forward-progress bound: organic retry streaks under
    // this contention stay in the hundreds, so a trip means livelock.
    cfg0.machine.retry_jitter = 4;

    Experiment ex("fault_sweep", cfg0);
    ex.title(csprintf("Fault-injection campaign: lock-free counter, "
                      "p=16, c=8, %d seed(s) from %llu",
                      nseeds, (unsigned long long)base))
        .title(csprintf("fault mix: %s", fc.summary().c_str()))
        .meta("app", "lock-free counter")
        .meta("seeds", nseeds)
        .rowKey("impl")
        .colKey("seed")
        .table(false)
        .faults(fc);

    std::mutex fail_mutex;
    std::vector<Failure> failures;
    std::atomic<std::uint64_t> total_injected{0};

    std::size_t index = 0;
    for (const ImplCase &impl : applicationMatrix()) {
        for (int k = 0; k < nseeds; ++k, ++index) {
            Config cfg = ex.configFor(impl);
            cfg.machine.seed = base + static_cast<std::uint64_t>(k);
            cfg.watchdog.enabled = true;
            cfg.watchdog.max_retries = 100000;
            cfg.watchdog.max_txn_age = 5'000'000;
            cfg.watchdog.scan_period = 50'000;
            std::uint64_t seed = cfg.machine.seed;
            std::size_t idx = index;
            ex.point(
                impl.label, csprintf("%llu", (unsigned long long)seed),
                cfg,
                [&, impl, seed, idx](System &sys) {
                    CounterAppConfig app;
                    app.kind = CounterKind::LOCK_FREE;
                    app.prim = impl.prim;
                    app.contention = 8;
                    app.phases = 4;
                    CounterAppResult r = runCounterApp(sys, app);

                    std::vector<std::string> problems;
                    if (!r.completed) {
                        const Watchdog &wd = sys.watchdogState();
                        problems.push_back(
                            wd.tripped()
                                ? wd.diagnosis()
                                : "run did not complete:\n" +
                                      Watchdog::blockedTxnDump(sys));
                    } else {
                        if (!r.correct)
                            problems.push_back(
                                "final counter value is wrong");
                        for (std::string &v : checkCoherence(sys))
                            problems.push_back(std::move(v));
                        for (std::string &v : checkFaultAccounting(sys))
                            problems.push_back(std::move(v));
                    }

                    const FaultPlan::Counters &fctr =
                        sys.faultPlan().counters();
                    std::uint64_t injected =
                        fctr.nacks_injected + fctr.resv_drops +
                        fctr.forced_evictions + fctr.jitter_applied;
                    total_injected += injected;

                    PointResult res;
                    res.value = r.avg_cycles_per_update;
                    res.metrics = collectRunMetrics(sys);
                    SysStats agg = sys.stats();
                    res.fields.set("seed", seed)
                        .set("ok", static_cast<std::uint64_t>(
                                       problems.empty() ? 1 : 0))
                        .set("updates", r.updates)
                        .set("retries", agg.retries)
                        .set("nacks", agg.nacks)
                        .set("nacks_injected", fctr.nacks_injected)
                        .set("resv_drops", fctr.resv_drops)
                        .set("forced_evictions", fctr.forced_evictions)
                        .set("jitter_applied", fctr.jitter_applied)
                        .set("jitter_cycles", fctr.jitter_cycles);

                    if (!problems.empty()) {
                        std::string report = csprintf(
                            "fault_sweep failure: impl=%s seed=%llu\n"
                            "fault mix: %s\n",
                            impl.label.c_str(),
                            (unsigned long long)seed,
                            sys.cfg().faults.summary().c_str());
                        for (const std::string &p : problems)
                            report += p + "\n";
                        std::lock_guard<std::mutex> g(fail_mutex);
                        failures.push_back(
                            Failure{idx, impl.label, seed, report});
                    }
                    return res;
                });
        }
    }

    ex.run(jobs);

    const char *dir = std::getenv("DSM_BENCH_DIR");
    std::string d = dir != nullptr && dir[0] != '\0' ? dir : ".";
    for (const Failure &f : failures) {
        std::string path =
            csprintf("%s/WATCHDOG_fault_sweep_%zu_%s_%llu.txt",
                     d.c_str(), f.index, fileLabel(f.impl).c_str(),
                     (unsigned long long)f.seed);
        std::ofstream out(path, std::ios::binary);
        if (out)
            out << f.report;
        std::fprintf(stderr, "FAILED %s seed=%llu -> %s\n",
                     f.impl.c_str(), (unsigned long long)f.seed,
                     path.c_str());
    }

    std::printf("campaign: %zu points (%d impls x %d seeds), "
                "%llu faults injected, %zu failure(s)\n",
                ex.numPoints(), 9, nseeds,
                (unsigned long long)total_injected.load(),
                failures.size());
    if (!failures.empty()) {
        // The fault spec is part of the point's identity: repeat it
        // verbatim so the repro rebuilds the exact fault stream.
        std::printf("reproduce with: DSM_FAULTS='%s' fault_sweep "
                    "--seeds 1 --seed %llu\n",
                    fc.summary().c_str(),
                    (unsigned long long)failures.front().seed);
        return 1;
    }
    return 0;
}
