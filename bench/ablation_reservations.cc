/**
 * @file
 * Ablation for Section 3.1's limited-reservation option: a contended
 * LL/SC lock-free counter with the in-memory reservation limit swept
 * from unlimited (full bit-vector) down to 1. Beyond-limit
 * store_conditionals fail locally, trading extra retries for reduced
 * network traffic -- the paper suggests this "can help reduce the
 * effect of high contention on performance".
 */

#include "cpu/system.hh"
#include "exp/experiment.hh"
#include "sim/logging.hh"
#include "workloads/counter_apps.hh"

using namespace dsm;

int
main(int argc, char **argv)
{
    Experiment ex = Experiment::paper64("ablation_reservations");
    ex.title("Ablation: LL/SC lock-free counter, in-memory reservation "
             "limit sweep, p=64")
        .title("")
        .title(csprintf("%-4s %-10s %14s %14s %16s %14s", "pol",
                        "limit", "c=8", "c=64", "sc local fails",
                        "msgs(c=64)"))
        .meta("app", "LL/SC lock-free counter")
        .rowKey("")
        .colKey("")
        .table(false);

    const int limits[] = {0, 16, 4, 1}; // 0 = unlimited bit-vector
    for (SyncPolicy pol : {SyncPolicy::UNC, SyncPolicy::UPD}) {
        for (int limit : limits) {
            std::string label =
                limit == 0 ? "bitvec" : csprintf("K=%d", limit);
            Config cfg = ex.configFor(pol);
            cfg.machine.max_memory_reservations = limit;
            std::string row =
                csprintf("%s %s", toString(pol), label.c_str());
            for (int c : {8, 64}) {
                ex.point(row, csprintf("c=%d", c), cfg,
                         [pol, limit, label, c](System &sys) {
                    CounterAppConfig app;
                    app.kind = CounterKind::LOCK_FREE;
                    app.prim = Primitive::LLSC;
                    app.contention = c;
                    app.phases = c > 1 ? (256 / c < 6 ? 6 : 256 / c)
                                       : 96;
                    CounterAppResult r = runCounterApp(sys, app);
                    if (!r.completed || !r.correct)
                        dsm_fatal("reservation ablation failed "
                                  "(limit=%d)", limit);
                    PointResult res;
                    res.value = r.avg_cycles_per_update;
                    res.metrics = collectRunMetrics(sys);
                    res.fields.set("policy", toString(pol))
                        .set("limit", label)
                        .set("contention", c)
                        .set("avg_cycles_per_update",
                             r.avg_cycles_per_update)
                        .set("sc_local_failures",
                             sys.stats().sc_local_failures);
                    if (c == 8) {
                        res.text = csprintf("%-4s %-10s %14.1f",
                                            toString(pol),
                                            label.c_str(), res.value);
                    } else {
                        res.text = csprintf(
                            " %14.1f %16llu %14llu\n", res.value,
                            static_cast<unsigned long long>(
                                sys.stats().sc_local_failures),
                            static_cast<unsigned long long>(
                                sys.mesh().stats().messages));
                    }
                    return res;
                });
            }
        }
    }
    ex.seed(parseSeedFlag(argc, argv));
    ex.run(parseJobsFlag(argc, argv));
    return 0;
}
