/**
 * @file
 * Ablation for Section 3.1's limited-reservation option: a contended
 * LL/SC lock-free counter with the in-memory reservation limit swept
 * from unlimited (full bit-vector) down to 1. Beyond-limit
 * store_conditionals fail locally, trading extra retries for reduced
 * network traffic -- the paper suggests this "can help reduce the
 * effect of high contention on performance".
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/counter_apps.hh"

using namespace dsmbench;

int
main()
{
    std::printf("Ablation: LL/SC lock-free counter, in-memory "
                "reservation limit sweep, p=64\n\n");
    const int limits[] = {0, 16, 4, 1}; // 0 = unlimited bit-vector

    std::printf("%-4s %-10s %14s %14s %16s %14s\n", "pol", "limit",
                "c=8", "c=64", "sc local fails", "msgs(c=64)");
    BenchReport rep("ablation_reservations");
    rep.meta("app", "LL/SC lock-free counter");
    addMachineMeta(rep, paperConfig());
    for (SyncPolicy pol : {SyncPolicy::UNC, SyncPolicy::UPD}) {
        for (int limit : limits) {
            char label[32];
            std::snprintf(label, sizeof label, "%s",
                          limit == 0 ? "bitvec" : "");
            if (limit != 0)
                std::snprintf(label, sizeof label, "K=%d", limit);
            double cyc8 = 0, cyc64 = 0;
            std::uint64_t local_fails = 0, msgs = 0;
            for (int c : {8, 64}) {
                Config cfg = paperConfig(pol);
                cfg.machine.max_memory_reservations = limit;
                System sys(cfg);
                CounterAppConfig app;
                app.kind = CounterKind::LOCK_FREE;
                app.prim = Primitive::LLSC;
                app.contention = c;
                app.phases = c > 1 ? (256 / c < 6 ? 6 : 256 / c) : 96;
                CounterAppResult r = runCounterApp(sys, app);
                if (!r.completed || !r.correct)
                    dsm_fatal("reservation ablation failed (limit=%d)",
                              limit);
                if (c == 8) {
                    cyc8 = r.avg_cycles_per_update;
                } else {
                    cyc64 = r.avg_cycles_per_update;
                    local_fails = sys.stats().sc_local_failures;
                    msgs = sys.mesh().stats().messages;
                }
                rep.row()
                    .set("policy", toString(pol))
                    .set("limit", label)
                    .set("contention", c)
                    .set("avg_cycles_per_update",
                         r.avg_cycles_per_update)
                    .set("sc_local_failures",
                         sys.stats().sc_local_failures)
                    .metrics(collectRunMetrics(sys));
            }
            std::printf("%-4s %-10s %14.1f %14.1f %16llu %14llu\n",
                        toString(pol), label, cyc8, cyc64,
                        static_cast<unsigned long long>(local_fails),
                        static_cast<unsigned long long>(msgs));
        }
    }
    writeReport(rep);
    return 0;
}
