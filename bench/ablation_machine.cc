/**
 * @file
 * Ablation: sensitivity of the headline comparison (UNC FAP vs INV
 * CAS+lx vs UPD CAS on the contended lock-free counter) to machine
 * parameters -- memory service time, network hop latency, and machine
 * size. The paper's qualitative ordering should be robust across these.
 */

#include <cstdio>

#include "fig_counter_common.hh"

using namespace dsmbench;

namespace {

double
point(Config cfg, Primitive prim, int contention, RunMetrics *metrics)
{
    System sys(cfg);
    CounterAppConfig app;
    app.kind = CounterKind::LOCK_FREE;
    app.prim = prim;
    app.contention = contention;
    app.phases = phasesFor(contention);
    CounterAppResult r = runCounterApp(sys, app);
    if (!r.completed || !r.correct)
        dsm_fatal("ablation point failed");
    *metrics = collectRunMetrics(sys);
    return r.avg_cycles_per_update;
}

Config
implConfig(SyncPolicy pol, bool lx)
{
    Config cfg = paperConfig(pol);
    cfg.sync.use_load_exclusive = lx;
    return cfg;
}

void
sweepRow(BenchReport &rep, const char *name,
         const std::function<void(Config &)> &tweak)
{
    struct Impl
    {
        const char *label;
        SyncPolicy pol;
        Primitive prim;
        bool lx;
    };
    const Impl impls[] = {
        {"UNC FAP", SyncPolicy::UNC, Primitive::FAP, false},
        {"INV CAS+lx", SyncPolicy::INV, Primitive::CAS, true},
        {"INV LLSC", SyncPolicy::INV, Primitive::LLSC, false},
        {"UPD CAS", SyncPolicy::UPD, Primitive::CAS, false},
    };
    std::printf("\n%s\n", name);
    for (const Impl &im : impls) {
        Config cfg = implConfig(im.pol, im.lx);
        tweak(cfg);
        int procs = cfg.machine.num_procs;
        int c_low = procs < 16 ? procs : 16;
        int c_high = procs < 64 ? procs : 64;
        double vals[2];
        const int cs[] = {c_low, c_high};
        for (int i = 0; i < 2; ++i) {
            RunMetrics m;
            vals[i] = point(cfg, im.prim, cs[i], &m);
            rep.row()
                .set("sweep", name)
                .set("impl", im.label)
                .set("contention", cs[i])
                .set("avg_cycles_per_update", vals[i])
                .metrics(m);
        }
        std::printf("  %-12s c=%-2d: %10.1f   c=%-2d: %10.1f\n",
                    im.label, c_low, vals[0], c_high, vals[1]);
    }
}

} // namespace

int
main()
{
    std::printf("Ablation: machine-parameter sensitivity of the "
                "contended lock-free counter\n");

    BenchReport rep("ablation_machine");
    rep.meta("app", "lock-free counter");

    sweepRow(rep, "baseline (mem=20, hop=2, p=64)", [](Config &) {});
    sweepRow(rep, "slow memory (mem=40)", [](Config &c) {
        c.machine.mem_service_time = 40;
    });
    sweepRow(rep, "fast memory (mem=10)", [](Config &c) {
        c.machine.mem_service_time = 10;
    });
    sweepRow(rep, "slow network (hop=4)", [](Config &c) {
        c.machine.hop_latency = 4;
    });
    sweepRow(rep, "small machine (p=16, 4x4)", [](Config &c) {
        c.machine.num_procs = 16;
        c.machine.mesh_x = 4;
        c.machine.mesh_y = 4;
    });
    writeReport(rep);
    return 0;
}
