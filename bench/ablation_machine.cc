/**
 * @file
 * Ablation: sensitivity of the headline comparison (UNC FAP vs INV
 * CAS+lx vs UPD CAS on the contended lock-free counter) to machine
 * parameters -- memory service time, network hop latency, and machine
 * size. The paper's qualitative ordering should be robust across these.
 */

#include "fig_counter_common.hh"

using namespace dsmbench;

namespace {

struct Impl
{
    const char *label;
    SyncPolicy pol;
    Primitive prim;
    bool lx;
};

constexpr Impl impls[] = {
    {"UNC FAP", SyncPolicy::UNC, Primitive::FAP, false},
    {"INV CAS+lx", SyncPolicy::INV, Primitive::CAS, true},
    {"INV LLSC", SyncPolicy::INV, Primitive::LLSC, false},
    {"UPD CAS", SyncPolicy::UPD, Primitive::CAS, false},
};

/**
 * Add one sweep group: a header line, then for each headline
 * implementation a (c_low, c_high) pair of points whose text fragments
 * concatenate into one printed line per implementation.
 */
void
addGroup(Experiment &ex, const char *name,
         const std::function<void(Config &)> &tweak)
{
    for (const Impl &im : impls) {
        Config cfg = ex.configFor(im.pol);
        cfg.sync.use_load_exclusive = im.lx;
        tweak(cfg);
        int procs = cfg.machine.num_procs;
        int c_low = procs < 16 ? procs : 16;
        int c_high = procs < 64 ? procs : 64;
        bool first = im.label == impls[0].label;
        const int cs[] = {c_low, c_high};
        for (int i = 0; i < 2; ++i) {
            int c = cs[i];
            bool lo = i == 0;
            std::string row = csprintf("%s | %s", name, im.label);
            ex.point(row, lo ? "c_lo" : "c_hi", cfg,
                     [name, im, c, lo, first](System &sys) {
                CounterAppConfig app;
                app.kind = CounterKind::LOCK_FREE;
                app.prim = im.prim;
                app.contention = c;
                app.phases = phasesFor(c);
                CounterAppResult r = runCounterApp(sys, app);
                if (!r.completed || !r.correct)
                    dsm_fatal("ablation point failed");
                PointResult res;
                res.value = r.avg_cycles_per_update;
                res.metrics = collectRunMetrics(sys);
                res.fields.set("sweep", name)
                    .set("impl", im.label)
                    .set("contention", c)
                    .set("avg_cycles_per_update", res.value);
                if (lo) {
                    res.text = first ? csprintf("\n%s\n", name) : "";
                    res.text += csprintf("  %-12s c=%-2d: %10.1f",
                                         im.label, c, res.value);
                } else {
                    res.text = csprintf("   c=%-2d: %10.1f\n", c,
                                        res.value);
                }
                return res;
            });
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Experiment ex = Experiment::paper64("ablation_machine");
    ex.title("Ablation: machine-parameter sensitivity of the contended "
             "lock-free counter")
        .meta("app", "lock-free counter")
        .rowKey("")
        .colKey("")
        .table(false);

    addGroup(ex, "baseline (mem=20, hop=2, p=64)", [](Config &) {});
    addGroup(ex, "slow memory (mem=40)", [](Config &c) {
        c.machine.mem_service_time = 40;
    });
    addGroup(ex, "fast memory (mem=10)", [](Config &c) {
        c.machine.mem_service_time = 10;
    });
    addGroup(ex, "slow network (hop=4)", [](Config &c) {
        c.machine.hop_latency = 4;
    });
    addGroup(ex, "small machine (p=16, 4x4)", [](Config &c) {
        c.machine.num_procs = 16;
        c.machine.mesh_x = 4;
        c.machine.mesh_y = 4;
    });
    ex.seed(parseSeedFlag(argc, argv));
    ex.run(parseJobsFlag(argc, argv));
    return 0;
}
