/**
 * @file
 * Regenerates Figure 2 (contention histograms for LocusRoute, Cholesky,
 * and Transitive Closure under each coherence policy) and the Section
 * 4.2 write-run-length measurements.
 *
 * LocusRoute and Cholesky run as the documented stand-in workloads (see
 * DESIGN.md); Transitive Closure is the Figure 1 program.
 */

#include "cpu/system.hh"
#include "exp/experiment.hh"
#include "sim/logging.hh"
#include "workloads/task_queue_apps.hh"
#include "workloads/transitive_closure.hh"

using namespace dsm;

namespace {

/**
 * Render one finished run's contention histogram as a text block and
 * fill the point's machine-readable fields.
 */
PointResult
harvest(const char *app, const char *policy, System &sys,
        double write_run)
{
    sys.sharing().finalize();
    const Histogram &h = sys.sharing().contention();
    PointResult res;
    res.value = write_run;
    res.text = csprintf("%-18s %-4s  write-run=%.2f  accesses=%llu\n",
                        app, policy, write_run,
                        static_cast<unsigned long long>(h.samples()));
    res.fields.set("write_run", write_run).set("accesses", h.samples());
    res.text += "  level:";
    const int levels[] = {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64};
    for (int l : levels)
        res.text += csprintf(" %6d", l);
    res.text += "\n  pct:  ";
    // Bucket boundaries: percentage of accesses with contention in
    // (prev, level].
    int prev = 0;
    for (int l : levels) {
        double pct = 0;
        for (int v = prev + 1; v <= l; ++v)
            pct += 100.0 * h.fraction(static_cast<std::uint64_t>(v));
        res.text += csprintf(" %6.2f", pct);
        res.fields.set(csprintf("pct_le_%d", l), pct);
        prev = l;
    }
    res.text += "\n\n";
    res.metrics = collectRunMetrics(sys);
    return res;
}

TaskQueueConfig
locusConfig(Primitive prim)
{
    // Work sized so that the central lock is mostly idle (the paper's
    // measured LocusRoute pattern: no contention common, write runs
    // 1.70-1.83).
    TaskQueueConfig cfg;
    cfg.prim = prim;
    cfg.num_tasks = 512;
    cfg.work_min = 80000;
    cfg.work_max = 240000;
    cfg.cs_words = 2;
    return cfg;
}

TaskQueueConfig
choleskyConfig(Primitive prim)
{
    // Somewhat higher lock traffic than LocusRoute (write runs
    // 1.59-1.62, still mostly uncontended).
    TaskQueueConfig cfg;
    cfg.prim = prim;
    cfg.num_tasks = 512;
    cfg.work_min = 30000;
    cfg.work_max = 90000;
    cfg.cs_words = 3;
    cfg.num_locks = 12;
    cfg.backoff_cap = 4096;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    Experiment ex = Experiment::paper64("fig2_contention_histograms");
    ex.title("Figure 2: histograms of the level of contention (p=64)")
        .title("Section 4.2 targets: LocusRoute write-run 1.70-1.83, "
               "Cholesky 1.59-1.62,")
        .title("Transitive Closure slightly above 1.00 with very high "
               "contention.")
        .title("")
        .meta("figure", "Figure 2")
        .rowKey("app")
        .colKey("policy")
        .table(false);

    for (SyncPolicy pol :
         {SyncPolicy::INV, SyncPolicy::UNC, SyncPolicy::UPD}) {
        const char *policy = toString(pol);
        ex.point("LocusRoute-like", policy, ex.configFor(pol),
                 [policy](System &sys) {
            TaskQueueResult r = runLocusLike(sys, locusConfig(
                                                     Primitive::FAP));
            if (!r.correct)
                dsm_fatal("LocusRoute-like run failed");
            return harvest("LocusRoute-like", policy, sys,
                           r.avg_write_run);
        });
        ex.point("Cholesky-like", policy, ex.configFor(pol),
                 [policy](System &sys) {
            TaskQueueResult r = runCholeskyLike(sys, choleskyConfig(
                                                         Primitive::FAP));
            if (!r.correct)
                dsm_fatal("Cholesky-like run failed");
            return harvest("Cholesky-like", policy, sys,
                           r.avg_write_run);
        });
        ex.point("TransitiveClosure", policy, ex.configFor(pol),
                 [policy](System &sys) {
            TcConfig tc;
            tc.size = 48;
            tc.prim = Primitive::FAP;
            tc.edge_pct = 8;
            TcResult r = runTransitiveClosure(sys, tc);
            if (!r.correct)
                dsm_fatal("Transitive Closure run failed");
            sys.sharing().finalize();
            return harvest("TransitiveClosure", policy, sys,
                           sys.sharing().averageWriteRun());
        });
    }
    ex.seed(parseSeedFlag(argc, argv));
    ex.run(parseJobsFlag(argc, argv));
    return 0;
}
