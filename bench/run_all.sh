#!/bin/sh
# Run every benchmark binary and collect the machine-readable outputs.
#
# Usage: bench/run_all.sh [--jobs N] [--seed S] [--trace BENCH]
#        [--timeseries BENCH] [--openloop[=SPEC]] [build-dir] [output-dir]
#
# Each binary prints its usual text tables and writes BENCH_<name>.json
# (schema dsm-bench-v1; simcore_microbench writes google-benchmark's
# JSON) into the output directory. The output directory defaults to
# $DSM_BENCH_DIR if set, else ./bench-results; an explicit output-dir
# argument overrides both. --jobs N (or DSM_JOBS) is passed through to
# the binaries so each sweep runs its points on N host threads.
# --trace BENCH runs that benchmark with transaction tracing on
# (DSM_TXN_TRACE=1), writing TRACE_<name>.json next to its
# BENCH_<name>.json; open it at https://ui.perfetto.dev.
# --timeseries BENCH runs that benchmark with time-resolved telemetry
# on (DSM_TIMESERIES=1), writing TIMESERIES_<name>.json plus a
# self-contained TIMESERIES_<name>.html report (open it in a browser).
# --seed S exports DSM_SEED=S so every sweep's simulated machines use
# seed S (recorded in each report's meta.seed); fault_sweep instead
# uses S as the base of its per-point seed range.
# --openloop appends the open-loop serving campaign (openloop_sweep) to
# the bench list; --openloop=SPEC additionally exports DSM_OPENLOOP=SPEC
# so the sweep replaces its built-in load axis with the given level.
# --overload appends the overload/graceful-degradation campaign
# (overload_sweep); --overload=SPEC additionally exports DSM_SERVE=SPEC
# so the sweep replaces its mechanism axis with the given mode.
set -eu

jobs=
trace_bench=
ts_bench=
openloop=
overload=
while :; do
    case "${1:-}" in
    --jobs)
        jobs=$2
        shift 2
        ;;
    --jobs=*)
        jobs=${1#--jobs=}
        shift
        ;;
    --seed)
        DSM_SEED=$2
        export DSM_SEED
        shift 2
        ;;
    --seed=*)
        DSM_SEED=${1#--seed=}
        export DSM_SEED
        shift
        ;;
    --trace)
        trace_bench=$2
        shift 2
        ;;
    --trace=*)
        trace_bench=${1#--trace=}
        shift
        ;;
    --timeseries)
        ts_bench=$2
        shift 2
        ;;
    --timeseries=*)
        ts_bench=${1#--timeseries=}
        shift
        ;;
    --openloop)
        openloop=1
        shift
        ;;
    --openloop=*)
        openloop=1
        DSM_OPENLOOP=${1#--openloop=}
        export DSM_OPENLOOP
        shift
        ;;
    --overload)
        overload=1
        shift
        ;;
    --overload=*)
        overload=1
        DSM_SERVE=${1#--overload=}
        export DSM_SERVE
        shift
        ;;
    *)
        break
        ;;
    esac
done

build_dir=${1:-build}
out_dir=${2:-${DSM_BENCH_DIR:-bench-results}}

if [ ! -d "$build_dir/bench" ]; then
    echo "error: $build_dir/bench not found -- build the project first" >&2
    echo "  cmake -B $build_dir -S . && cmake --build $build_dir -j" >&2
    exit 1
fi

mkdir -p "$out_dir"
DSM_BENCH_DIR=$(cd "$out_dir" && pwd)
export DSM_BENCH_DIR
# Keep the logs focused on the tables; dsm_inform chatter is off.
DSM_QUIET=1
export DSM_QUIET

benches="
table1_serialized_messages
fig2_contention_histograms
fig3_lockfree_counter
fig4_tts_counter
fig5_mcs_counter
fig6_applications
ablation_backoff
ablation_machine
ablation_serial_llsc
ablation_reservations
ablation_barrier
fault_sweep
simcore_microbench
"
if [ -n "$openloop" ]; then
    benches="$benches
openloop_sweep
"
fi
if [ -n "$overload" ]; then
    benches="$benches
overload_sweep
"
fi

for b in $benches; do
    bin="$build_dir/bench/$b"
    if [ ! -x "$bin" ]; then
        echo "skipping $b (not built)" >&2
        continue
    fi
    echo "==> $b"
    if [ "$b" = "$trace_bench" ]; then
        DSM_TXN_TRACE=1
        export DSM_TXN_TRACE
    else
        unset DSM_TXN_TRACE || true
    fi
    if [ "$b" = "$ts_bench" ]; then
        DSM_TIMESERIES=1
        export DSM_TIMESERIES
    else
        unset DSM_TIMESERIES || true
    fi
    if [ -n "$jobs" ]; then
        "$bin" --jobs "$jobs" | tee "$DSM_BENCH_DIR/$b.txt"
    else
        "$bin" | tee "$DSM_BENCH_DIR/$b.txt"
    fi
    echo
done

echo "collected reports in $DSM_BENCH_DIR:"
ls -1 "$DSM_BENCH_DIR"/BENCH_*.json
ls -1 "$DSM_BENCH_DIR"/TRACE_*.json 2>/dev/null || true
ls -1 "$DSM_BENCH_DIR"/TIMESERIES_* 2>/dev/null || true
