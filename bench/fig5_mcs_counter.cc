/**
 * @file
 * Regenerates Figure 5: average time per counter update for the counter
 * protected by an MCS queue lock (LL/SC simulates compare_and_swap;
 * the FAP variant uses the swap-only MCS release).
 */

#include "fig_counter_common.hh"

int
main(int argc, char **argv)
{
    dsmbench::runFigure("fig5_mcs_counter", "Figure 5",
                        dsm::CounterKind::MCS,
                        dsm::parseJobsFlag(argc, argv),
                        dsm::parseSeedFlag(argc, argv));
    return 0;
}
