/**
 * @file
 * Open-loop serving campaign: the Figure 6 implementation matrix
 * (INV/UPD/UNC x FAP/LL-SC/CAS) under a seeded Poisson arrival process
 * at increasing offered load, plus one bursty level. Unlike the
 * paper's closed-loop figures, the arrival rate is independent of
 * service times, so the campaign traces out the serving curves the
 * tail-observability layer exists for: throughput vs offered load
 * (rising, then saturating) and sojourn p50/p99/p999 vs offered load
 * (exploding past saturation), with an SLO-violation fraction as a
 * first-class metric.
 *
 * Every point also asserts the observability invariants: the run
 * completes with an exact counter, the transaction tracer's phase sums
 * still partition every latency with the ADMIT (admission-wait) phase
 * included (txn.phase_sum_mismatches == 0), and the per-impl
 * throughput curve over the pure-rate axis never collapses as load
 * rises (monotone saturation, with tolerance).
 *
 * Usage: openloop_sweep [--seed BASE] [--jobs N]
 *
 * DSM_OPENLOOP, when set, replaces the built-in load axis with the
 * given spec as a single level — the failure repro line uses exactly
 * this. The overload-protection serving layer runs with its defaults
 * (combining + backpressure + priority + NACK backoff); DSM_SERVE
 * overrides it, including "0" to measure the unprotected stack.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "cpu/admission.hh"
#include "cpu/system.hh"
#include "exp/experiment.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "workloads/openloop.hh"

using namespace dsm;

namespace {

/** One load level: a label and a DSM_OPENLOOP-style spec. */
struct LoadLevel
{
    std::string label;
    OpenLoopConfig cfg;
    std::string spec;
};

LoadLevel
makeLevel(std::string label, std::string spec)
{
    LoadLevel lv;
    lv.label = std::move(label);
    lv.spec = std::move(spec);
    std::string err = lv.cfg.parse(lv.spec);
    if (!err.empty())
        dsm_fatal("load level '%s': %s", lv.label.c_str(), err.c_str());
    return lv;
}

struct Failure
{
    std::string impl;
    std::string level;
    std::string spec;
    std::string problem;
};

} // namespace

int
main(int argc, char **argv)
{
    int jobs = parseJobsFlag(argc, argv);
    std::uint64_t seed = parseSeedFlag(argc, argv);
    if (seed == 0)
        seed = seedFromEnv();
    if (seed == 0)
        seed = 1;
    // The seed is applied per point below; consume the global override
    // so Experiment::run() does not flatten it again.
    unsetenv("DSM_SEED");

    // The load axis: Poisson arrivals per processor per cycle, from
    // well under saturation to well past it, plus one bursty level at
    // a moderate rate. DSM_OPENLOOP replaces the axis with a single
    // custom level.
    std::vector<LoadLevel> levels;
    OpenLoopConfig env = openLoopConfigFromEnv();
    bool custom = env.enabled;
    if (custom) {
        LoadLevel lv;
        lv.label = "custom";
        lv.cfg = env;
        lv.spec = env.summary();
        levels.push_back(std::move(lv));
    } else {
        const char *common = "slo_cycles=2000,ops_per_proc=256";
        levels.push_back(makeLevel(
            "1e-4", csprintf("rate=0.0001,%s", common)));
        levels.push_back(makeLevel(
            "3e-4", csprintf("rate=0.0003,%s", common)));
        levels.push_back(makeLevel(
            "1e-3", csprintf("rate=0.001,%s", common)));
        levels.push_back(makeLevel(
            "3e-3", csprintf("rate=0.003,%s", common)));
        levels.push_back(makeLevel(
            "3e-4x8", csprintf("rate=0.0003,burst=8,%s", common)));
    }

    Config cfg0;
    cfg0.machine.num_procs = 16;
    cfg0.machine.mesh_x = 4;
    cfg0.machine.mesh_y = 4;
    cfg0.machine.retry_jitter = 4;
    // Serve the campaign through the overload-protection layer: home
    // combining keeps hot-word fetch&adds O(1) in service slots and
    // credit backpressure sheds at the admission edge, which is what
    // lets the saturation gate below demand a flat curve instead of
    // tolerating retry collapse. DSM_SERVE overrides (e.g. "0").
    if (const char *sv = std::getenv("DSM_SERVE"); sv != nullptr)
        cfg0.serve = serveConfigFromEnv();
    else
        cfg0.serve.enabled = true;

    Experiment ex("openloop_sweep", cfg0);
    ex.title(csprintf("Open-loop serving campaign: Poisson arrivals "
                      "into bounded admission queues, p=16, %zu "
                      "level(s), seed %llu; cell value = sojourn p99",
                      levels.size(), (unsigned long long)seed))
        .meta("app", "open-loop lock-free counter")
        .meta("levels", static_cast<int>(levels.size()))
        .meta("seed", static_cast<int>(seed))
        .rowKey("impl")
        .colKey("load")
        .table(true)
        // Always harvest the Chrome/Perfetto span trees: the exemplar
        // slices (category txn_exemplar) are the point of the campaign,
        // and the TRACE_ file only lands when DSM_BENCH_DIR is set.
        .traceTxns(true);

    std::mutex fail_mutex;
    std::vector<Failure> failures;

    for (const ImplCase &impl : applicationMatrix()) {
        for (const LoadLevel &lv : levels) {
            Config cfg = ex.configFor(impl);
            cfg.machine.seed = seed;
            cfg.openloop = lv.cfg;
            // Tail attribution and exemplar capture ride along on
            // every point: the ADMIT phase keeps the phase-sum
            // invariant honest under queueing, and the four slowest
            // transactions' span trees land in the report.
            cfg.txn_trace.enabled = true;
            cfg.txn_trace.exemplar_k = 4;
            std::string spec = lv.spec;
            std::string level = lv.label;
            ex.point(
                impl.label, level, cfg,
                [&, impl, spec, level](System &sys) {
                    OpenLoopResult r = runOpenLoop(sys, impl.prim);

                    std::vector<std::string> problems;
                    if (!r.completed_run)
                        problems.push_back("run did not complete");
                    else if (!r.correct)
                        problems.push_back(
                            "final counter value != completed updates");
                    if (sys.txns().phaseSumMismatches() != 0)
                        problems.push_back(csprintf(
                            "%llu transaction phase-sum mismatch(es)",
                            (unsigned long long)
                                sys.txns().phaseSumMismatches()));

                    PointResult res;
                    res.value = static_cast<double>(r.sojourn_p99);
                    res.metrics = collectRunMetrics(sys);
                    res.fields.set("offered", r.offered)
                        .set("admitted", r.admitted)
                        .set("rejected", r.rejected)
                        .set("completed", r.completed)
                        .set("slo_violations", r.slo_violations)
                        .set("slo_frac", r.slo_frac)
                        .set("throughput", r.throughput)
                        .set("sojourn_mean", r.sojourn_mean)
                        .set("sojourn_p50",
                             static_cast<std::uint64_t>(r.sojourn_p50))
                        .set("sojourn_p99",
                             static_cast<std::uint64_t>(r.sojourn_p99))
                        .set("sojourn_p999",
                             static_cast<std::uint64_t>(r.sojourn_p999))
                        .set("sojourn_max",
                             static_cast<std::uint64_t>(r.sojourn_max))
                        .set("admission_wait_mean",
                             r.admission_wait_mean)
                        .set("ok", static_cast<std::uint64_t>(
                                       problems.empty() ? 1 : 0));
                    // The full tail picture of the point: conditional
                    // per-phase attribution above p90/p99 plus the
                    // slowest transactions' summaries.
                    JsonWriter w;
                    w.beginObject();
                    w.key("attribution");
                    w.raw(sys.txns().attribution().tailJson());
                    w.key("exemplars");
                    w.raw(sys.txns().exemplarsJson());
                    w.endObject();
                    res.fields.setRaw("tail", w.str());

                    if (!problems.empty()) {
                        std::lock_guard<std::mutex> g(fail_mutex);
                        for (std::string &p : problems)
                            failures.push_back(Failure{
                                impl.label, level, spec,
                                std::move(p)});
                    }
                    return res;
                });
        }
    }

    const std::vector<PointResult> &results = ex.run(jobs);

    // Campaign-level gates over the built-in axis. The pure-rate axis
    // is levels[0..3] in declaration order within each impl row.
    std::uint64_t total_rejected = 0, total_violations = 0,
                  total_completed = 0;
    std::size_t nlevels = levels.size();
    std::size_t nimpls = results.size() / nlevels;
    std::vector<ImplCase> impls = applicationMatrix();
    dsm_assert(results.size() == impls.size() * nlevels,
               "unexpected result count");
    std::string gate_errors;
    JsonValue report;
    std::string perr;
    if (!parseJson(ex.reportJson(), &report, &perr))
        dsm_fatal("cannot reparse own report: %s", perr.c_str());
    const JsonValue *rows = report.find("results");
    dsm_assert(rows != nullptr && rows->isArray(), "no results array");
    for (std::size_t ii = 0; ii < nimpls; ++ii) {
        double peak_tput = 0.0;
        for (std::size_t li = 0; li + (custom ? 0 : 1) < nlevels; ++li) {
            const JsonValue &row = rows->array[ii * nlevels + li];
            double tput = row.num("throughput");
            total_rejected +=
                static_cast<std::uint64_t>(row.num("rejected"));
            total_violations +=
                static_cast<std::uint64_t>(row.num("slo_violations"));
            total_completed +=
                static_cast<std::uint64_t>(row.num("completed"));
            // Saturation gate: with combining and backpressure on,
            // the curve must rise and then stay flat — goodput at
            // every overload point within 10% of the running peak.
            // Retry collapse past the knee is no longer tolerable:
            // combining folds the retry storm's hot-word fetch&adds
            // into O(1) service slots and the credit throttle sheds
            // the excess at the edge, so any sag beyond 10% means a
            // protection mechanism regressed.
            if (!custom && peak_tput > 0 && tput < peak_tput * 0.9) {
                gate_errors += csprintf(
                    "%s: throughput collapsed at load %s: peak %g -> %g\n",
                    impls[ii].label.c_str(),
                    levels[li].label.c_str(), peak_tput, tput);
            }
            peak_tput = std::max(peak_tput, tput);
        }
        // The bursty level rides outside the monotone gate but still
        // contributes to the exercised-machinery totals.
        if (!custom) {
            const JsonValue &row =
                rows->array[ii * nlevels + (nlevels - 1)];
            total_rejected +=
                static_cast<std::uint64_t>(row.num("rejected"));
            total_violations +=
                static_cast<std::uint64_t>(row.num("slo_violations"));
            total_completed +=
                static_cast<std::uint64_t>(row.num("completed"));
        }
    }

    std::printf("campaign: %zu points (%zu impls x %zu levels), %llu "
                "completed, %llu rejected, %llu SLO violations, %zu "
                "failure(s)\n",
                ex.numPoints(), nimpls, nlevels,
                (unsigned long long)total_completed,
                (unsigned long long)total_rejected,
                (unsigned long long)total_violations,
                failures.size());

    for (const Failure &f : failures)
        std::fprintf(stderr, "FAILED %s load=%s: %s\n", f.impl.c_str(),
                     f.level.c_str(), f.problem.c_str());
    if (!gate_errors.empty())
        std::fprintf(stderr, "%s", gate_errors.c_str());

    // The campaign must actually exercise the machinery it certifies:
    // a sweep whose top load level sheds nothing and never misses the
    // SLO is not probing the tail at all.
    if (!custom && (total_rejected == 0 || total_violations == 0)) {
        std::printf("campaign error: no shed arrivals or no SLO "
                    "violations; the load axis never saturates\n");
        return 1;
    }
    if (!failures.empty() || !gate_errors.empty()) {
        const std::string &spec =
            failures.empty() ? levels.front().spec
                             : failures.front().spec;
        std::printf("reproduce with: DSM_OPENLOOP='%s' openloop_sweep "
                    "--seed %llu\n",
                    spec.c_str(), (unsigned long long)seed);
        return 1;
    }
    return 0;
}
