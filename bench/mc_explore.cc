/**
 * @file
 * Exhaustive model-checker sweep: runs mc::explore over every
 * implementation of the application matrix ({UNC, INV, UPD} x
 * {FAP, LLSC, CAS}) on small closed configurations and reports state /
 * transition / terminal counts per point. Any invariant violation or
 * deadlock fails the run (exit 1) and writes a MC_DUMP_<label>.txt
 * state-dump artifact next to the JSON so CI can upload it.
 *
 * Sweep points:
 *   - 2 nodes, 2 ops/proc, no loss   (the CI smoke configuration)
 *   - 3 nodes, 1 op/proc,  no loss
 *   - 2 nodes, 1 op/proc,  loss budget 1 (recovery layer exercised)
 *   - 2 nodes, 1 op/proc,  reorder budget 1 (bounded-skew delivery)
 *   - 2 nodes, 1 op/proc,  duplication budget 1 (replayed copies)
 *   - 2 nodes, 1 op/proc,  all three faulty-channel budgets combined
 *
 * Beyond the 3x3 application matrix, the INVd (CAS-deny) and INVs
 * (CAS-share) directory variants run the same points: their distinct
 * failed-CAS reply paths (CAS_FAIL vs CAS_FAIL_S) carry their own
 * dedup/replay rules.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "exp/experiment.hh"
#include "mc/explorer.hh"
#include "stats/bench_report.hh"

using namespace dsm;

namespace {

struct McPoint
{
    const char *tag;
    int nodes;
    int ops;
    int loss;
    int reorder;
    int dup;
};

std::string
sanitize(std::string s)
{
    for (char &c : s)
        if (c == ' ' || c == '/')
            c = '_';
    return s;
}

void
writeDump(const std::string &label, const mc::Result &res)
{
    const char *dir = std::getenv("DSM_BENCH_DIR");
    std::string path = std::string(dir != nullptr ? dir : ".") +
                       "/MC_DUMP_" + sanitize(label) + ".txt";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return;
    for (const mc::Violation &v : res.violations) {
        std::fprintf(f, "== %s: %s\n%s\n", v.kind.c_str(),
                     v.detail.c_str(), v.state_dump.c_str());
    }
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", path.c_str());
}

} // namespace

int
main()
{
    const McPoint points[] = {
        { "2n2op", 2, 2, 0, 0, 0 },
        { "3n1op", 3, 1, 0, 0, 0 },
        { "2n1op+loss", 2, 1, 1, 0, 0 },
        { "2n1op+reorder", 2, 1, 0, 1, 0 },
        { "2n1op+dup", 2, 1, 0, 0, 1 },
        { "2n1op+chaos", 2, 1, 1, 1, 1 },
    };

    BenchReport report("mc_explore");
    report.meta("description",
                "exhaustive small-config exploration of the pure "
                "transition functions");

    // The 3x3 application matrix plus the CAS directory variants: INVd
    // denies sharing on failed CAS, INVs grants a shared copy — each
    // has its own reply class and dedup-replay rules to model-check.
    std::vector<ImplCase> impls = applicationMatrix();
    {
        SyncConfig sc;
        sc.policy = SyncPolicy::INV;
        sc.cas_variant = CasVariant::DENY;
        impls.push_back({"INVd CAS", Primitive::CAS, sc});
        sc.cas_variant = CasVariant::SHARE;
        impls.push_back({"INVs CAS", Primitive::CAS, sc});
    }

    bool ok = true;
    for (const ImplCase &impl : impls) {
        for (const McPoint &pt : points) {
            Config cfg;
            cfg.sync = impl.sync;
            cfg.mc.primitive = impl.prim;
            cfg.mc.nodes = pt.nodes;
            cfg.mc.ops_per_proc = pt.ops;
            cfg.mc.loss_budget = pt.loss;
            cfg.mc.reorder_budget = pt.reorder;
            cfg.mc.dup_budget = pt.dup;

            mc::Result res = mc::explore(cfg);

            std::string label = impl.label + " " + pt.tag;
            std::printf("%-18s states %9llu transitions %10llu "
                        "terminals %7llu depth %5llu %s\n",
                        label.c_str(),
                        (unsigned long long)res.states,
                        (unsigned long long)res.transitions,
                        (unsigned long long)res.terminals,
                        (unsigned long long)res.max_depth,
                        res.ok() ? "ok"
                                 : (res.completed ? "VIOLATIONS"
                                                  : "INCOMPLETE"));

            report.row()
                .set("impl", impl.label)
                .set("point", pt.tag)
                .set("nodes", pt.nodes)
                .set("ops_per_proc", pt.ops)
                .set("loss_budget", pt.loss)
                .set("reorder_budget", pt.reorder)
                .set("dup_budget", pt.dup)
                .set("states", (std::uint64_t)res.states)
                .set("transitions", (std::uint64_t)res.transitions)
                .set("terminals", (std::uint64_t)res.terminals)
                .set("losses", (std::uint64_t)res.losses)
                .set("reorders", (std::uint64_t)res.reorders)
                .set("dups", (std::uint64_t)res.dups)
                .set("max_depth", (std::uint64_t)res.max_depth)
                .set("violations", (std::uint64_t)res.violations.size())
                .set("completed", res.completed ? 1 : 0);

            if (!res.ok()) {
                ok = false;
                for (const mc::Violation &v : res.violations)
                    std::fprintf(stderr, "  %s: %s\n", v.kind.c_str(),
                                 v.detail.c_str());
                if (!res.violations.empty())
                    writeDump(label, res);
            }
        }
    }

    report.write();
    return ok ? 0 : 1;
}
