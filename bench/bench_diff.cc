/**
 * @file
 * Cross-run perf-regression gate over dsm-bench-v1 reports.
 *
 * Usage:
 *   bench_diff [--threshold-scale X] <baseline> <candidate>
 *
 * Each operand is either one BENCH_*.json file or a directory of them
 * (directories are matched by filename; a baseline bench missing from
 * the candidate is an error, extra candidate benches are ignored).
 * Per-metric noise thresholds live in src/stats/bench_diff.cc; only
 * changes in the harmful direction fail the gate.
 *
 * Exit status: 0 = within thresholds, 1 = regression detected,
 * 2 = usage, parse, or structure error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "stats/bench_diff.hh"

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: bench_diff [--threshold-scale X] "
                 "<baseline> <candidate>\n"
                 "  operands are BENCH_*.json files or directories of "
                 "them\n");
    std::exit(2);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    dsm::DiffOptions opt;
    std::string base, cand;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--threshold-scale") == 0 && i + 1 < argc) {
            opt.threshold_scale = std::atof(argv[++i]);
        } else if (std::strncmp(a, "--threshold-scale=", 18) == 0) {
            opt.threshold_scale = std::atof(a + 18);
        } else if (a[0] == '-') {
            usage();
        } else if (base.empty()) {
            base = a;
        } else if (cand.empty()) {
            cand = a;
        } else {
            usage();
        }
    }
    if (base.empty() || cand.empty() || opt.threshold_scale < 0)
        usage();

    namespace fs = std::filesystem;
    bool base_dir = fs::is_directory(base);
    bool cand_dir = fs::is_directory(cand);
    if (base_dir != cand_dir) {
        std::fprintf(stderr,
                     "bench_diff: operands must both be files or both "
                     "be directories\n");
        return 2;
    }
    dsm::DiffResult res = base_dir
                              ? dsm::diffBenchDirs(base, cand, opt)
                              : dsm::diffBenchFiles(base, cand, opt);
    std::fputs(dsm::renderDiff(res).c_str(), stdout);
    if (!res.errors.empty())
        return 2;
    return res.regressions.empty() ? 0 : 1;
}
