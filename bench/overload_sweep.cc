/**
 * @file
 * Overload and graceful-degradation campaign: the fetch&add column of
 * the implementation matrix (INV/UPD/UNC FAP) driven 1x/2x/4x past the
 * serving knee by the open-loop Poisson workload, ablated over the
 * overload-protection mechanisms of the serving layer: none,
 * +combining, +backpressure, +priority, all.
 *
 * The campaign certifies the graceful-degradation contract: with every
 * mechanism on, goodput at 2x and 4x saturation stays within 10% of
 * the row's running peak and the sojourn p99 stays bounded, while the
 * unprotected stack ("none") must demonstrably violate one of those at
 * the same loads — a sweep in which the baseline also degrades
 * gracefully is not probing overload at all. Every point additionally
 * asserts the serving ledger (served == slots + coalesced,
 * served == hi + lo) and the transaction tracer's phase-sum partition
 * with the ADMIT phase included.
 *
 * Usage: overload_sweep [--seed BASE] [--jobs N]
 *
 * DSM_SERVE, when set, replaces the mechanism axis with the given spec
 * as a single mode; DSM_OPENLOOP likewise replaces the load axis. The
 * failure repro line uses exactly these. On failure a
 * WATCHDOG_overload_sweep_<point-index>_<impl>_<mode>_<load>.txt
 * (collision-free under --jobs N) diagnosis dump is
 * written next to BENCH_overload_sweep.json.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "cpu/admission.hh"
#include "cpu/system.hh"
#include "exp/experiment.hh"
#include "fault/watchdog.hh"
#include "mem/home_queue.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "workloads/openloop.hh"

using namespace dsm;

namespace {

/** One protection mode: a label and a DSM_SERVE-style spec. */
struct ServeMode
{
    std::string label;
    std::string spec; ///< empty = serving layer disabled
    ServeConfig cfg;
};

ServeMode
makeMode(std::string label, std::string spec)
{
    ServeMode m;
    m.label = std::move(label);
    m.spec = std::move(spec);
    if (!m.spec.empty()) {
        std::string err = m.cfg.parse(m.spec);
        if (!err.empty())
            dsm_fatal("serve mode '%s': %s", m.label.c_str(),
                      err.c_str());
    }
    return m;
}

/** One load level: a label and a DSM_OPENLOOP-style spec. */
struct LoadLevel
{
    std::string label;
    OpenLoopConfig cfg;
    std::string spec;
};

LoadLevel
makeLevel(std::string label, std::string spec)
{
    LoadLevel lv;
    lv.label = std::move(label);
    lv.spec = std::move(spec);
    std::string err = lv.cfg.parse(lv.spec);
    if (!err.empty())
        dsm_fatal("load level '%s': %s", lv.label.c_str(), err.c_str());
    return lv;
}

std::string
fileLabel(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        if (c == ' ' || c == '+' || c == '/')
            c = '_';
    return out;
}

struct Failure
{
    std::size_t index;
    std::string impl;
    std::string mode;
    std::string level;
    std::string serve_spec;
    std::string load_spec;
    std::string report;
};

} // namespace

int
main(int argc, char **argv)
{
    int jobs = parseJobsFlag(argc, argv);
    std::uint64_t seed = parseSeedFlag(argc, argv);
    if (seed == 0)
        seed = seedFromEnv();
    if (seed == 0)
        seed = 1;
    // The seed is applied per point below; consume the global override
    // so Experiment::run() does not flatten it again.
    unsetenv("DSM_SEED");

    // The mechanism axis: each protection in isolation, then all of
    // them. DSM_SERVE replaces the axis with a single custom mode.
    std::vector<ServeMode> modes;
    bool custom_mode = std::getenv("DSM_SERVE") != nullptr &&
                       std::getenv("DSM_SERVE")[0] != '\0';
    if (custom_mode) {
        ServeMode m;
        m.label = "custom";
        m.cfg = serveConfigFromEnv();
        m.spec = m.cfg.enabled ? m.cfg.summary() : "";
        modes.push_back(std::move(m));
    } else {
        modes.push_back(makeMode("none", ""));
        modes.push_back(makeMode(
            "+combining",
            "combining=1,backpressure=0,priority=0,nack_backoff=0"));
        modes.push_back(makeMode(
            "+backpressure",
            "combining=0,backpressure=1,priority=0,nack_backoff=0"));
        modes.push_back(makeMode(
            "+priority",
            "combining=0,backpressure=0,priority=1,nack_backoff=0"));
        modes.push_back(makeMode("all", "1"));
    }

    // The load axis: the serving knee for this machine sits near 1e-3
    // arrivals/cycle/proc (the openloop_sweep axis), so 2e-3 and 4e-3
    // are 2x and 4x saturation. DSM_OPENLOOP replaces the axis with a
    // single custom level.
    std::vector<LoadLevel> levels;
    OpenLoopConfig lenv = openLoopConfigFromEnv();
    bool custom_load = lenv.enabled;
    if (custom_load) {
        LoadLevel lv;
        lv.label = "custom";
        lv.cfg = lenv;
        lv.spec = lenv.summary();
        levels.push_back(std::move(lv));
    } else {
        const char *common = "slo_cycles=2000,ops_per_proc=192";
        levels.push_back(makeLevel("1x", csprintf("rate=0.001,%s",
                                                  common)));
        levels.push_back(makeLevel("2x", csprintf("rate=0.002,%s",
                                                  common)));
        levels.push_back(makeLevel("4x", csprintf("rate=0.004,%s",
                                                  common)));
    }

    // The fetch&add column of the application matrix: combining is a
    // home-side mechanism, so the home-served UNC/UPD implementations
    // show it directly while INV (which executes fetch&add in the
    // cache) exercises the other three mechanisms.
    std::vector<ImplCase> impls;
    for (const ImplCase &impl : applicationMatrix())
        if (impl.prim == Primitive::FAP)
            impls.push_back(impl);
    dsm_assert(!impls.empty(), "no FAP implementations in the matrix");

    Config cfg0;
    cfg0.machine.num_procs = 16;
    cfg0.machine.mesh_x = 4;
    cfg0.machine.mesh_y = 4;
    cfg0.machine.retry_jitter = 4;

    Experiment ex("overload_sweep", cfg0);
    ex.title(csprintf("Overload campaign: open-loop fetch&add at 1x/2x/"
                      "4x saturation, p=16, %zu mode(s) x %zu level(s), "
                      "seed %llu; cell value = goodput, updates per "
                      "1000 cycles",
                      modes.size(), levels.size(),
                      (unsigned long long)seed))
        .meta("app", "open-loop lock-free counter")
        .meta("modes", static_cast<int>(modes.size()))
        .meta("levels", static_cast<int>(levels.size()))
        .meta("seed", static_cast<int>(seed))
        .rowKey("impl_mode")
        .colKey("load")
        .table(true);

    std::mutex fail_mutex;
    std::vector<Failure> failures;

    std::size_t index = 0;
    for (const ImplCase &impl : impls) {
        for (const ServeMode &mode : modes) {
            for (const LoadLevel &lv : levels) {
                ++index;
                Config cfg = ex.configFor(impl);
                cfg.machine.seed = seed;
                cfg.openloop = lv.cfg;
                cfg.serve = mode.cfg;
                // The phase-sum invariant must hold with both the
                // ADMIT queueing phase and the serve layer's parked
                // (backoff/throttle) cycles in the ledger.
                cfg.txn_trace.enabled = true;
                // A tripped watchdog turns an overload livelock into a
                // diagnosis instead of a wedged campaign; the bounds
                // are generous enough that deliberate backoff/throttle
                // parking (excluded from livelock age) never trips.
                cfg.watchdog.enabled = true;
                cfg.watchdog.max_retries = 100000;
                cfg.watchdog.max_txn_age = 5'000'000;
                cfg.watchdog.scan_period = 50'000;
                std::string row = impl.label + " " + mode.label;
                std::string serve_spec = mode.spec;
                std::string load_spec = lv.spec;
                std::string level = lv.label;
                std::string mlabel = mode.label;
                std::size_t idx = index - 1;
                ex.point(
                    row, level, cfg,
                    [&, impl, mlabel, level, serve_spec,
                     load_spec, idx](System &sys) {
                        OpenLoopResult r = runOpenLoop(sys, impl.prim);

                        std::vector<std::string> problems;
                        if (!r.completed_run) {
                            const Watchdog &wd = sys.watchdogState();
                            problems.push_back(
                                wd.tripped()
                                    ? wd.diagnosis()
                                    : "run did not complete:\n" +
                                          Watchdog::blockedTxnDump(sys));
                        } else if (!r.correct) {
                            problems.push_back(
                                "final counter value != completed "
                                "updates");
                        }
                        if (sys.txns().phaseSumMismatches() != 0)
                            problems.push_back(csprintf(
                                "%llu transaction phase-sum "
                                "mismatch(es)",
                                (unsigned long long)
                                    sys.txns().phaseSumMismatches()));
                        // The serving ledger must reconcile exactly:
                        // every served request consumed a slot or rode
                        // a combined batch, and hi/lo partition it.
                        const ServeStats &sst = sys.serveStats();
                        if (sst.served != sst.slots + sst.coalesced)
                            problems.push_back(csprintf(
                                "serve ledger: served %llu != slots "
                                "%llu + coalesced %llu",
                                (unsigned long long)sst.served,
                                (unsigned long long)sst.slots,
                                (unsigned long long)sst.coalesced));
                        if (sst.served != sst.hi_served + sst.lo_served)
                            problems.push_back(csprintf(
                                "serve ledger: served %llu != hi %llu "
                                "+ lo %llu",
                                (unsigned long long)sst.served,
                                (unsigned long long)sst.hi_served,
                                (unsigned long long)sst.lo_served));

                        double shed_frac =
                            r.offered > 0
                                ? static_cast<double>(r.rejected) /
                                      static_cast<double>(r.offered)
                                : 0.0;

                        PointResult res;
                        res.value = r.throughput * 1000.0;
                        res.metrics = collectRunMetrics(sys);
                        res.fields.set("offered", r.offered)
                            .set("admitted", r.admitted)
                            .set("rejected", r.rejected)
                            .set("completed", r.completed)
                            .set("goodput", r.throughput)
                            .set("shed_frac", shed_frac)
                            .set("slo_violations", r.slo_violations)
                            .set("slo_frac", r.slo_frac)
                            .set("sojourn_mean", r.sojourn_mean)
                            .set("sojourn_p50",
                                 static_cast<std::uint64_t>(
                                     r.sojourn_p50))
                            .set("sojourn_p99",
                                 static_cast<std::uint64_t>(
                                     r.sojourn_p99))
                            .set("sojourn_p999",
                                 static_cast<std::uint64_t>(
                                     r.sojourn_p999))
                            .set("serve_slots", sst.slots)
                            .set("serve_coalesced", sst.coalesced)
                            .set("serve_batches", sst.batches)
                            .set("serve_aged", sst.aged)
                            .set("throttle_events", sst.throttle_events)
                            .set("backoff_capped", sst.backoff_capped)
                            .set("ok", static_cast<std::uint64_t>(
                                           problems.empty() ? 1 : 0));

                        if (!problems.empty()) {
                            std::string report = csprintf(
                                "overload_sweep failure: impl=%s "
                                "mode=%s load=%s\nserve: %s\nload: "
                                "%s\n",
                                impl.label.c_str(), mlabel.c_str(),
                                level.c_str(),
                                serve_spec.empty() ? "off"
                                                   : serve_spec.c_str(),
                                load_spec.c_str());
                            for (const std::string &p : problems)
                                report += p + "\n";
                            std::lock_guard<std::mutex> g(fail_mutex);
                            failures.push_back(Failure{
                                idx, impl.label, mlabel, level,
                                serve_spec, load_spec,
                                std::move(report)});
                        }
                        return res;
                    });
            }
        }
    }

    const std::vector<PointResult> &results = ex.run(jobs);

    // Campaign-level gates over the built-in axes; a custom mode or
    // load replaces an axis and disables the shape gates (the point
    // assertions above still run).
    std::size_t nlevels = levels.size();
    std::size_t nmodes = modes.size();
    dsm_assert(results.size() == impls.size() * nmodes * nlevels,
               "unexpected result count");
    std::string gate_errors;
    JsonValue report;
    std::string perr;
    if (!parseJson(ex.reportJson(), &report, &perr))
        dsm_fatal("cannot reparse own report: %s", perr.c_str());
    const JsonValue *rows = report.find("results");
    dsm_assert(rows != nullptr && rows->isArray(), "no results array");

    std::uint64_t total_coalesced = 0, total_throttles = 0,
                  total_rejected = 0, total_capped = 0;
    bool baseline_collapses = false, unc_flat = false;
    if (!custom_mode && !custom_load) {
        auto rowAt = [&](std::size_t ii, std::size_t mi,
                         std::size_t li) -> const JsonValue & {
            return rows->array[(ii * nmodes + mi) * nlevels + li];
        };
        std::size_t mi_none = nmodes, mi_all = nmodes;
        for (std::size_t mi = 0; mi < nmodes; ++mi) {
            if (modes[mi].label == "none")
                mi_none = mi;
            if (modes[mi].label == "all")
                mi_all = mi;
        }
        dsm_assert(mi_none < nmodes && mi_all < nmodes,
                   "mode axis lost its endpoints");
        for (std::size_t ii = 0; ii < impls.size(); ++ii) {
            const std::string &ilabel = impls[ii].label;
            for (std::size_t mi = 0; mi < nmodes; ++mi) {
                for (std::size_t li = 0; li < nlevels; ++li) {
                    const JsonValue &row = rowAt(ii, mi, li);
                    total_coalesced += static_cast<std::uint64_t>(
                        row.num("serve_coalesced"));
                    total_throttles += static_cast<std::uint64_t>(
                        row.num("throttle_events"));
                    total_rejected += static_cast<std::uint64_t>(
                        row.num("rejected"));
                    total_capped += static_cast<std::uint64_t>(
                        row.num("backoff_capped"));
                }
            }
            // Graceful degradation with every mechanism on: goodput at
            // every overload point within 10% of the running peak —
            // work keeps completing as offered load doubles past the
            // knee (overload shows up in the tail and in shedding, not
            // as a goodput cliff).
            double peak = 0.0;
            for (std::size_t li = 0; li < nlevels; ++li) {
                double goodput = rowAt(ii, mi_all, li).num("goodput");
                if (peak > 0 && goodput < peak * 0.9)
                    gate_errors += csprintf(
                        "%s all: goodput sagged > 10%% at load %s "
                        "(peak %g -> %g)\n",
                        ilabel.c_str(), levels[li].label.c_str(), peak,
                        goodput);
                peak = std::max(peak, goodput);
            }
            double none_1x_p99 =
                rowAt(ii, mi_none, 0).num("sojourn_p99");
            for (std::size_t li = 1; li < nlevels; ++li) {
                double none_p99 =
                    rowAt(ii, mi_none, li).num("sojourn_p99");
                double all_p99 =
                    rowAt(ii, mi_all, li).num("sojourn_p99");
                // The protections must never worsen the overload tail
                // (10% slack for schedule perturbation)...
                if (all_p99 > none_p99 * 1.1)
                    gate_errors += csprintf(
                        "%s at load %s: protections worsened the tail "
                        "(p99 %g -> %g)\n",
                        ilabel.c_str(), levels[li].label.c_str(),
                        none_p99, all_p99);
                // ... and the unprotected stack must demonstrably
                // collapse somewhere: p99 blowing past 8x its 1x value
                // or a majority of completions missing the SLO.
                if (none_p99 > 8.0 * std::max(none_1x_p99, 1.0) ||
                    rowAt(ii, mi_none, li).num("slo_frac") >= 0.5)
                    baseline_collapses = true;
            }
            // The paper's showcase: for the home-served UNC fetch&add,
            // combining folds the entire overload into O(1) service
            // slots, so the fully protected tail stays flat — p99 at
            // 4x saturation within 3x of its 1x value.
            if (ilabel.rfind("UNC", 0) == 0) {
                double p99_1x = rowAt(ii, mi_all, 0).num("sojourn_p99");
                double p99_top =
                    rowAt(ii, mi_all, nlevels - 1).num("sojourn_p99");
                unc_flat = p99_top <= 3.0 * std::max(p99_1x, 1.0);
                if (!unc_flat)
                    gate_errors += csprintf(
                        "%s all: combined fetch&add tail is not flat "
                        "under 4x overload (p99 %g at 1x -> %g)\n",
                        ilabel.c_str(), p99_1x, p99_top);
            }
        }
        // The campaign must certify a contrast, not a tautology: the
        // unprotected stack has to visibly collapse somewhere on this
        // axis...
        if (!baseline_collapses)
            gate_errors += "baseline 'none' mode degraded gracefully "
                           "everywhere; the load axis is not probing "
                           "overload\n";
        // ... and actually exercise every mechanism it ablates.
        if (total_coalesced == 0)
            gate_errors += "no requests were ever combined\n";
        if (total_throttles == 0)
            gate_errors += "backpressure never throttled a requester\n";
        if (total_rejected == 0)
            gate_errors += "no arrivals were ever shed\n";
    }

    std::printf("campaign: %zu points (%zu impls x %zu modes x %zu "
                "levels), %llu coalesced, %llu throttle events, %llu "
                "capped backoffs, %llu shed, %zu failure(s)\n",
                ex.numPoints(), impls.size(), nmodes, nlevels,
                (unsigned long long)total_coalesced,
                (unsigned long long)total_throttles,
                (unsigned long long)total_capped,
                (unsigned long long)total_rejected, failures.size());

    const char *dir = std::getenv("DSM_BENCH_DIR");
    std::string d = dir != nullptr && dir[0] != '\0' ? dir : ".";
    for (const Failure &f : failures) {
        std::string path = csprintf(
            "%s/WATCHDOG_overload_sweep_%zu_%s_%s_%s.txt", d.c_str(),
            f.index, fileLabel(f.impl).c_str(),
            fileLabel(f.mode).c_str(), fileLabel(f.level).c_str());
        std::ofstream out(path, std::ios::binary);
        if (out)
            out << f.report;
        std::fprintf(stderr, "FAILED %s mode=%s load=%s -> %s\n",
                     f.impl.c_str(), f.mode.c_str(), f.level.c_str(),
                     path.c_str());
    }
    if (!gate_errors.empty())
        std::fprintf(stderr, "%s", gate_errors.c_str());

    if (!failures.empty() || !gate_errors.empty()) {
        std::string serve_spec =
            failures.empty() ? "1" : failures.front().serve_spec;
        std::string load_spec = failures.empty()
                                    ? levels.front().spec
                                    : failures.front().load_spec;
        std::printf("reproduce with: DSM_SERVE='%s' DSM_OPENLOOP='%s' "
                    "overload_sweep --seed %llu\n",
                    serve_spec.empty() ? "0" : serve_spec.c_str(),
                    load_spec.c_str(), (unsigned long long)seed);
        return 1;
    }
    return 0;
}
