/**
 * @file
 * Shared Experiment builder for Figures 3, 4, and 5: average time per
 * counter update for one of the synthetic counter applications, across
 * the full implementation matrix, for the paper's no-contention
 * write-run sweep (p=64, c=1, a in {1, 1.5, 2, 3, 10}) and contention
 * sweep (p=64, c in {2, 4, 8, 16, 64}).
 */

#ifndef DSM_BENCH_FIG_COUNTER_COMMON_HH
#define DSM_BENCH_FIG_COUNTER_COMMON_HH

#include "cpu/system.hh"
#include "exp/experiment.hh"
#include "sim/logging.hh"
#include "workloads/counter_apps.hh"

namespace dsmbench {

using namespace dsm;

/** Phases scale down with contention to bound simulation time. */
inline int
phasesFor(int contention)
{
    if (contention <= 1)
        return 128;
    int p = 256 / contention;
    return p < 6 ? 6 : p;
}

/**
 * Run one figure's full sweep: implementation matrix x (write-run
 * sweep, contention sweep), in parallel across @p jobs host threads.
 */
inline void
runFigure(const char *bench, const char *figure, CounterKind kind,
          int jobs, std::uint64_t seed = 0)
{
    Experiment::paper64(bench)
        .title(csprintf("%s: average cycles per counter update, %s "
                        "counter, p=64", figure, toString(kind)))
        .title("(rows: implementations of Section 3; left columns: "
               "no contention,")
        .title(" write-run sweep; right columns: contention sweep)")
        .meta("figure", figure)
        .meta("app", toString(kind))
        .impls(figureMatrix())
        .workload([kind](System &sys, const ImplCase &impl,
                         const SweepPoint &sp) {
            int c = sp.key == "c" ? static_cast<int>(sp.value) : 1;
            double a = sp.key == "a" ? sp.value : 1.0;
            CounterAppConfig app;
            app.kind = kind;
            app.prim = impl.prim;
            app.contention = c;
            app.write_run = a;
            app.phases = phasesFor(c);
            CounterAppResult r = runCounterApp(sys, app);
            if (!r.completed)
                dsm_fatal("%s deadlocked (c=%d a=%.1f)",
                          impl.label.c_str(), c, a);
            if (!r.correct)
                dsm_fatal("%s produced a wrong count (c=%d a=%.1f)",
                          impl.label.c_str(), c, a);
            PointResult res;
            res.value = r.avg_cycles_per_update;
            res.metrics = collectRunMetrics(sys);
            res.fields.set("contention", c)
                .set("write_run", a)
                .set("avg_cycles_per_update", r.avg_cycles_per_update);
            return res;
        })
        .sweep("a", {1.0, 1.5, 2.0, 3.0, 10.0})
        .sweep("c", {2, 4, 8, 16, 64})
        .seed(seed)
        .run(jobs);
}

} // namespace dsmbench

#endif // DSM_BENCH_FIG_COUNTER_COMMON_HH
