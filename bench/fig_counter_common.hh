/**
 * @file
 * Shared sweep driver for Figures 3, 4, and 5: average time per counter
 * update for one of the synthetic counter applications, across the full
 * implementation matrix, for the paper's no-contention write-run sweep
 * (p=64, c=1, a in {1, 1.5, 2, 3, 10}) and contention sweep
 * (p=64, c in {2, 4, 8, 16, 64}).
 */

#ifndef DSM_BENCH_FIG_COUNTER_COMMON_HH
#define DSM_BENCH_FIG_COUNTER_COMMON_HH

#include "bench_util.hh"
#include "workloads/counter_apps.hh"

namespace dsmbench {

/** Phases scale down with contention to bound simulation time. */
inline int
phasesFor(int contention)
{
    if (contention <= 1)
        return 128;
    int p = 256 / contention;
    return p < 6 ? 6 : p;
}

inline double
runPoint(const ImplCase &impl, CounterKind kind, int contention,
         double write_run, RunMetrics *metrics = nullptr)
{
    Config cfg = paperConfig(impl.sync.policy);
    cfg.sync = impl.sync;
    System sys(cfg);
    CounterAppConfig app;
    app.kind = kind;
    app.prim = impl.prim;
    app.contention = contention;
    app.write_run = write_run;
    app.phases = phasesFor(contention);
    CounterAppResult r = runCounterApp(sys, app);
    if (!r.completed)
        dsm_fatal("%s deadlocked (c=%d a=%.1f)", impl.label.c_str(),
                  contention, write_run);
    if (!r.correct)
        dsm_fatal("%s produced a wrong count (c=%d a=%.1f)",
                  impl.label.c_str(), contention, write_run);
    if (metrics != nullptr)
        *metrics = collectRunMetrics(sys);
    return r.avg_cycles_per_update;
}

inline void
runFigure(const char *bench, const char *figure, CounterKind kind)
{
    std::printf("%s: average cycles per counter update, %s counter, "
                "p=64\n", figure, toString(kind));
    std::printf("(rows: implementations of Section 3; left columns: "
                "no contention,\n write-run sweep; right columns: "
                "contention sweep)\n");

    const double write_runs[] = {1.0, 1.5, 2.0, 3.0, 10.0};
    const int contentions[] = {2, 4, 8, 16, 64};

    std::vector<std::string> cols;
    for (double a : write_runs)
        cols.push_back(csprintf(
            a == static_cast<int>(a) ? "a=%.0f" : "a=%.1f", a));
    for (int c : contentions)
        cols.push_back(csprintf("c=%d", c));
    printHeader("", cols);

    BenchReport rep(bench);
    rep.meta("figure", figure);
    rep.meta("app", toString(kind));
    addMachineMeta(rep, paperConfig());

    for (const ImplCase &impl : figureImplementations()) {
        std::vector<double> vals;
        auto addPoint = [&](const std::string &point, int c, double a) {
            RunMetrics m;
            double v = runPoint(impl, kind, c, a, &m);
            vals.push_back(v);
            rep.row()
                .set("impl", impl.label)
                .set("point", point)
                .set("contention", c)
                .set("write_run", a)
                .set("avg_cycles_per_update", v)
                .metrics(m);
        };
        for (std::size_t i = 0; i < std::size(write_runs); ++i)
            addPoint(cols[i], 1, write_runs[i]);
        for (std::size_t i = 0; i < std::size(contentions); ++i)
            addPoint(cols[std::size(write_runs) + i], contentions[i], 1.0);
        printRow(impl.label, vals);
    }
    writeReport(rep);
}

} // namespace dsmbench

#endif // DSM_BENCH_FIG_COUNTER_COMMON_HH
