/**
 * @file
 * A producer/consumer pipeline on the non-blocking FIFO queue, built
 * entirely from the paper's recommended primitive (compare_and_swap
 * with counted pointers -- per-word serial numbers, echoing Section
 * 3.1). Producers push work items; consumers process them and
 * accumulate into a lock-free result counter. Conservation of items
 * and results is checked at the end.
 *
 * Usage: pipeline_queue [items_per_producer]   (default 40)
 */

#include <cstdio>
#include <cstdlib>

#include "cpu/system.hh"
#include "sync/lockfree_counter.hh"
#include "sync/ms_queue.hh"

using namespace dsm;

namespace {

Task
producerTask(Proc &p, NonBlockingQueue &q, int id, int items,
             std::uint64_t *produced_sum)
{
    for (int i = 0; i < items; ++i) {
        Word item = static_cast<Word>(id * 1000 + i + 1);
        while (!co_await q.enqueue(p, item))
            co_await p.compute(100); // queue full; retry
        *produced_sum += item;
        co_await p.compute(150); // produce the next item
    }
}

Task
consumerTask(Proc &p, NonBlockingQueue &q, LockFreeCounter &done,
             LockFreeCounter &sum, int total_items)
{
    for (;;) {
        Word finished = (co_await p.load(done.addr())).value;
        if (finished >= static_cast<Word>(total_items))
            co_return;
        Word item = 0;
        if (co_await q.dequeue(p, &item)) {
            co_await p.compute(200); // "process" the item
            co_await sum.fetchAdd(p, item);
            co_await done.fetchInc(p);
        } else {
            co_await p.compute(80); // empty; poll again
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    int items = argc > 1 ? std::atoi(argv[1]) : 40;
    if (items < 1 || items > 900) {
        std::fprintf(stderr, "items_per_producer must be in [1, 900]\n");
        return 1;
    }

    Config cfg;
    cfg.machine.num_procs = 16;
    cfg.machine.mesh_x = 4;
    cfg.machine.mesh_y = 4;
    cfg.sync.policy = SyncPolicy::INV;
    cfg.sync.use_load_exclusive = true;
    System sys(cfg);

    const int producers = 8, consumers = 8;
    NonBlockingQueue queue(sys, 24);
    LockFreeCounter done(sys, Primitive::CAS);
    LockFreeCounter sum(sys, Primitive::CAS);

    std::uint64_t produced_sum = 0;
    int total = producers * items;
    for (int i = 0; i < producers; ++i)
        sys.spawn(producerTask(sys.proc(i), queue, i, items,
                               &produced_sum));
    for (int i = 0; i < consumers; ++i)
        sys.spawn(consumerTask(sys.proc(producers + i), queue, done,
                               sum, total));

    RunResult r = sys.run();
    Word consumed_sum = sys.debugRead(sum.addr());
    Word consumed = sys.debugRead(done.addr());

    std::printf("pipeline: %d producers x %d items -> %d consumers\n",
                producers, items, consumers);
    std::printf("completed=%s in %llu cycles; consumed %llu items\n",
                r.completed ? "yes" : "no",
                static_cast<unsigned long long>(r.end_tick),
                static_cast<unsigned long long>(consumed));
    std::printf("checksum: produced=%llu consumed=%llu %s\n",
                static_cast<unsigned long long>(produced_sum),
                static_cast<unsigned long long>(consumed_sum),
                produced_sum == consumed_sum ? "(match)" : "(MISMATCH)");
    return r.completed && produced_sum == consumed_sum &&
                   consumed == static_cast<Word>(total)
               ? 0
               : 1;
}
