/**
 * @file
 * Runs the paper's Transitive Closure program (Figure 1) on the full
 * 64-node machine with each universal primitive and prints elapsed
 * cycles, verifying the result against a sequential reference.
 *
 * Usage: transitive_closure_demo [size]   (default 32)
 */

#include <cstdio>
#include <cstdlib>

#include "cpu/system.hh"
#include "workloads/transitive_closure.hh"

using namespace dsm;

int
main(int argc, char **argv)
{
    int size = argc > 1 ? std::atoi(argv[1]) : 32;
    if (size < 2 || size > 128) {
        std::fprintf(stderr, "size must be in [2, 128]\n");
        return 1;
    }

    std::printf("Transitive Closure (Figure 1), p=64, %dx%d matrix\n\n",
                size, size);
    std::printf("%-6s %-6s %14s %12s %8s\n", "policy", "prim",
                "elapsed cycles", "faa calls", "correct");

    bool all_ok = true;
    for (SyncPolicy pol :
         {SyncPolicy::UNC, SyncPolicy::INV, SyncPolicy::UPD}) {
        for (Primitive prim :
             {Primitive::FAP, Primitive::LLSC, Primitive::CAS}) {
            Config cfg;
            cfg.sync.policy = pol;
            System sys(cfg);
            TcConfig tc;
            tc.size = size;
            tc.prim = prim;
            tc.edge_pct = 10;
            TcResult r = runTransitiveClosure(sys, tc);
            all_ok &= r.completed && r.correct;
            std::printf("%-6s %-6s %14llu %12llu %8s\n", toString(pol),
                        toString(prim),
                        static_cast<unsigned long long>(r.elapsed),
                        static_cast<unsigned long long>(
                            r.counter_fetches),
                        r.correct ? "yes" : "NO");
        }
    }
    return all_ok ? 0 : 1;
}
