/**
 * @file
 * Quickstart: build a 16-node DSM machine, run a handful of threads
 * incrementing a shared counter with compare_and_swap (the paper's
 * recommended primitive, in the cache controllers with write-invalidate
 * coherence and load_exclusive), and print what happened.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "cpu/system.hh"
#include "sync/lockfree_counter.hh"

using namespace dsm;

namespace {

Task
worker(Proc &p, LockFreeCounter &counter, int increments)
{
    for (int i = 0; i < increments; ++i) {
        Word old = co_await counter.fetchInc(p);
        if (i == 0)
            std::printf("  proc %2d saw counter=%llu on its first "
                        "increment\n", p.id(),
                        static_cast<unsigned long long>(old));
        // Some local work between updates.
        co_await p.compute(50);
    }
}

} // namespace

int
main()
{
    // 1. Configure the machine: 16 nodes on a 4x4 mesh, and the paper's
    //    recommended synchronization implementation (Section 5).
    Config cfg;
    cfg.machine.num_procs = 16;
    cfg.machine.mesh_x = 4;
    cfg.machine.mesh_y = 4;
    cfg.sync.policy = SyncPolicy::INV;          // cache-controller CAS
    cfg.sync.use_load_exclusive = true;         // the auxiliary load

    // 2. Build the system and a lock-free counter on top of CAS.
    System sys(cfg);
    LockFreeCounter counter(sys, Primitive::CAS);

    // 3. Spawn one workload coroutine per processor.
    const int increments = 10;
    for (NodeId n = 0; n < sys.numProcs(); ++n)
        sys.spawn(worker(sys.proc(n), counter, increments));

    // 4. Run to completion.
    RunResult r = sys.run();

    std::printf("\ncompleted=%s in %llu cycles (%llu events)\n",
                r.completed ? "yes" : "no",
                static_cast<unsigned long long>(r.end_tick),
                static_cast<unsigned long long>(r.events));
    std::printf("final counter value: %llu (expected %d)\n",
                static_cast<unsigned long long>(
                    sys.debugRead(counter.addr())),
                sys.numProcs() * increments);
    std::printf("\nsystem report:\n%s", sys.report().c_str());
    return r.completed &&
                   sys.debugRead(counter.addr()) ==
                       static_cast<Word>(sys.numProcs() * increments)
               ? 0
               : 1;
}
