/**
 * @file
 * Primitive shootout: the paper's central question in miniature. Runs
 * the lock-free counter under every (policy x primitive) combination at
 * a chosen contention level and prints the average cycles per update,
 * reproducing the qualitative conclusions of Section 4.3 on a small
 * machine you can simulate in seconds.
 *
 * Usage: primitive_shootout [contention]   (default 8, max 64)
 */

#include <cstdio>
#include <cstdlib>

#include "cpu/system.hh"
#include "workloads/counter_apps.hh"

using namespace dsm;

int
main(int argc, char **argv)
{
    int contention = argc > 1 ? std::atoi(argv[1]) : 8;
    if (contention < 1 || contention > 64) {
        std::fprintf(stderr, "contention must be in [1, 64]\n");
        return 1;
    }

    std::printf("lock-free counter, p=64, c=%d: avg cycles per update\n\n",
                contention);
    std::printf("%-6s %10s %10s %10s %14s\n", "", "FAP", "LLSC", "CAS",
                "CAS+load_excl");

    for (SyncPolicy pol :
         {SyncPolicy::UNC, SyncPolicy::INV, SyncPolicy::UPD}) {
        std::printf("%-6s", toString(pol));
        for (int variant = 0; variant < 4; ++variant) {
            Primitive prim = variant == 0   ? Primitive::FAP
                             : variant == 1 ? Primitive::LLSC
                                            : Primitive::CAS;
            bool lx = variant == 3;
            if (lx && pol != SyncPolicy::INV) {
                std::printf(" %13s", "-");
                continue;
            }
            Config cfg;
            cfg.sync.policy = pol;
            cfg.sync.use_load_exclusive = lx;
            System sys(cfg);
            CounterAppConfig app;
            app.kind = CounterKind::LOCK_FREE;
            app.prim = prim;
            app.contention = contention;
            app.phases = contention > 1 ? 32 : 128;
            CounterAppResult r = runCounterApp(sys, app);
            if (!r.completed || !r.correct) {
                std::printf(" %10s", "FAIL");
                continue;
            }
            std::printf(" %10.1f", r.avg_cycles_per_update);
            if (variant == 3)
                std::printf("   ");
        }
        std::printf("\n");
    }

    std::printf("\nExpected shape (Section 4.3): UNC FAP cheapest under "
                "contention;\nINV CAS improves with load_exclusive; UPD "
                "pays for useless updates.\n");
    return 0;
}
