/**
 * @file
 * A small "bank" scenario protected by MCS queue locks: processors
 * transfer money between accounts, each account guarded by its own MCS
 * lock. Demonstrates composing the synchronization library (lock
 * ordering to avoid deadlock) on the simulated DSM machine, and checks
 * conservation of the total balance.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "cpu/system.hh"
#include "sim/rng.hh"
#include "sync/mcs_lock.hh"

using namespace dsm;

namespace {

constexpr int NUM_ACCOUNTS = 8;
constexpr Word INITIAL_BALANCE = 1000;

Task
teller(Proc &p, std::vector<std::unique_ptr<McsLock>> &locks,
       std::vector<Addr> &accounts, std::uint64_t seed, int transfers)
{
    Rng rng(seed);
    for (int t = 0; t < transfers; ++t) {
        int from = static_cast<int>(rng.below(NUM_ACCOUNTS));
        int to = static_cast<int>(rng.below(NUM_ACCOUNTS - 1));
        if (to >= from)
            ++to;
        // Classic deadlock avoidance: lock in ascending account order.
        int lo = from < to ? from : to;
        int hi = from < to ? to : from;
        co_await locks[lo]->acquire(p);
        co_await locks[hi]->acquire(p);

        Word from_bal = (co_await p.load(accounts[from])).value;
        Word amount = rng.range(1, 20);
        if (from_bal >= amount) {
            Word to_bal = (co_await p.load(accounts[to])).value;
            co_await p.store(accounts[from], from_bal - amount);
            co_await p.store(accounts[to], to_bal + amount);
        }

        co_await locks[hi]->release(p);
        co_await locks[lo]->release(p);
        co_await p.compute(rng.range(50, 200));
    }
}

} // namespace

int
main()
{
    Config cfg;
    cfg.machine.num_procs = 16;
    cfg.machine.mesh_x = 4;
    cfg.machine.mesh_y = 4;
    cfg.sync.policy = SyncPolicy::INV;
    System sys(cfg);

    std::vector<std::unique_ptr<McsLock>> locks;
    std::vector<Addr> accounts;
    for (int i = 0; i < NUM_ACCOUNTS; ++i) {
        locks.push_back(std::make_unique<McsLock>(sys, Primitive::CAS));
        Addr a = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
        sys.writeInit(a, INITIAL_BALANCE);
        accounts.push_back(a);
    }

    const int transfers = 25;
    for (NodeId n = 0; n < sys.numProcs(); ++n)
        sys.spawn(teller(sys.proc(n), locks, accounts,
                         1000 + static_cast<std::uint64_t>(n),
                         transfers));
    RunResult r = sys.run();

    Word total = 0;
    std::printf("final balances:");
    for (Addr a : accounts) {
        Word b = sys.debugRead(a);
        total += b;
        std::printf(" %llu", static_cast<unsigned long long>(b));
    }
    std::printf("\ntotal=%llu (expected %llu), elapsed=%llu cycles, "
                "completed=%s\n",
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(NUM_ACCOUNTS *
                                                INITIAL_BALANCE),
                static_cast<unsigned long long>(r.end_tick),
                r.completed ? "yes" : "no");
    return r.completed && total == NUM_ACCOUNTS * INITIAL_BALANCE ? 0 : 1;
}
