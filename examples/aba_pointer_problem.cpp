/**
 * @file
 * Demonstrates Section 2.2's "pointer problem": compare_and_swap cannot
 * detect that a location was written back to its old value, so a
 * lock-free stack built on load+CAS corrupts itself under an ABA
 * interleaving, while the load_linked/store_conditional version
 * survives the identical schedule.
 */

#include <cstdio>

#include "cpu/system.hh"
#include "sync/treiber_stack.hh"

using namespace dsm;

namespace {

struct Outcome
{
    bool attempt_succeeded = false;
    Word final_head = 0;
};

Outcome
runScenario(Primitive prim)
{
    Config cfg;
    cfg.machine.num_procs = 4;
    cfg.machine.mesh_x = 2;
    cfg.machine.mesh_y = 2;
    System sys(cfg);
    TreiberStack stack(sys, prim, 4);

    // Stack becomes [A(top), B]; node ids: A=0 (encoded 1), B=1 (enc 2).
    sys.spawn([](Proc &p, TreiberStack &s) -> Task {
        co_await s.push(p, 1, 200);
        co_await s.push(p, 0, 100);
    }(sys.proc(0), stack));
    sys.run();
    sys.reapTasks();

    SyncBarrier g1(sys, 2), g2(sys, 2);
    Outcome out;

    // The slow popper: reads head=A and next=B, then stalls.
    sys.spawn([](Proc &p, TreiberStack &s, Primitive pr, SyncBarrier &a,
                 SyncBarrier &b, Outcome *o) -> Task {
        Addr head = s.headAddr();
        Word h = pr == Primitive::CAS ? (co_await p.load(head)).value
                                      : (co_await p.ll(head)).value;
        Word next = (co_await p.load(
                         s.nodeNextAddr(static_cast<int>(h) - 1)))
                        .value;
        co_await a.arrive();
        co_await b.arrive();
        OpResult r = pr == Primitive::CAS
                         ? co_await p.cas(head, h, next)
                         : co_await p.sc(head, next);
        o->attempt_succeeded = r.success;
    }(sys.proc(1), stack, prim, g1, g2, &out));

    // The interferer: pop A, pop B (freeing it), push A back.
    sys.spawn([](Proc &p, TreiberStack &s, SyncBarrier &a,
                 SyncBarrier &b) -> Task {
        co_await a.arrive();
        co_await s.pop(p);
        co_await s.pop(p);
        co_await s.push(p, 0, 100);
        co_await b.arrive();
    }(sys.proc(2), stack, g1, g2));

    sys.run();
    out.final_head = sys.debugRead(stack.headAddr());
    return out;
}

} // namespace

int
main()
{
    std::printf("The pointer (ABA) problem, Section 2.2 of the paper\n");
    std::printf("scenario: stack [A,B]; slow pop of A; meanwhile A and "
                "B are popped\nand A is pushed back (B is now free)\n\n");

    Outcome cas = runScenario(Primitive::CAS);
    std::printf("CAS:   slow pop %s; head -> node %lld %s\n",
                cas.attempt_succeeded ? "SUCCEEDED (wrongly)" : "failed",
                static_cast<long long>(cas.final_head) - 1,
                cas.attempt_succeeded
                    ? "(a FREED node -- the stack is corrupt)"
                    : "");

    Outcome llsc = runScenario(Primitive::LLSC);
    std::printf("LL/SC: slow pop %s; head -> node %lld %s\n",
                llsc.attempt_succeeded ? "SUCCEEDED (wrongly)"
                                       : "failed (reservation lost)",
                static_cast<long long>(llsc.final_head) - 1,
                llsc.attempt_succeeded ? "" : "(the stack is intact)");

    std::printf("\nThe paper's remedy: serial numbers on memory blocks "
                "(Section 3.1),\nso a store_conditional-style primitive "
                "can reject stale pointers.\n");
    bool demonstrated = cas.attempt_succeeded && !llsc.attempt_succeeded;
    return demonstrated ? 0 : 1;
}
